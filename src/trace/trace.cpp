#include "trace/trace.hpp"

#include <iomanip>
#include <sstream>

#include "campaign/json.hpp"

namespace pfi::trace {

void TraceLog::add(sim::TimePoint at, std::string node, std::string direction,
                   std::string type, std::string detail) {
  ++total_added_;
  if (capacity_ != 0 && records_.size() >= capacity_) {
    const std::size_t chunk = std::max<std::size_t>(1, capacity_ / 8);
    const std::size_t evict = std::min(chunk, records_.size());
    records_.erase(records_.begin(),
                   records_.begin() + static_cast<std::ptrdiff_t>(evict));
    dropped_ += evict;
  }
  records_.push_back(Record{at, std::move(node), std::move(direction),
                            std::move(type), std::move(detail)});
}

void TraceLog::set_capacity(std::size_t cap) {
  capacity_ = cap;
  if (capacity_ != 0 && records_.size() > capacity_) {
    const std::size_t evict = records_.size() - capacity_;
    records_.erase(records_.begin(),
                   records_.begin() + static_cast<std::ptrdiff_t>(evict));
    dropped_ += evict;
  }
}

std::vector<Record> TraceLog::select(
    const std::function<bool(const Record&)>& pred) const {
  std::vector<Record> out;
  for (const auto& r : records_) {
    if (pred(r)) out.push_back(r);
  }
  return out;
}

std::vector<Record> TraceLog::of_type(const std::string& type) const {
  return select([&](const Record& r) { return r.type == type; });
}

std::size_t TraceLog::count(const std::string& type,
                            const std::string& direction) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.type == type && (direction.empty() || r.direction == direction)) {
      ++n;
    }
  }
  return n;
}

std::vector<sim::TimePoint> TraceLog::times(
    const std::function<bool(const Record&)>& pred) const {
  std::vector<sim::TimePoint> out;
  for (const auto& r : records_) {
    if (pred(r)) out.push_back(r.at);
  }
  return out;
}

std::vector<sim::Duration> TraceLog::intervals(
    const std::vector<sim::TimePoint>& times) {
  std::vector<sim::Duration> out;
  for (std::size_t i = 1; i < times.size(); ++i) {
    out.push_back(times[i] - times[i - 1]);
  }
  return out;
}

std::optional<Record> TraceLog::first(
    const std::function<bool(const Record&)>& pred) const {
  for (const auto& r : records_) {
    if (pred(r)) return r;
  }
  return std::nullopt;
}

std::string TraceLog::render() const {
  std::ostringstream os;
  for (const auto& r : records_) {
    os << std::fixed << std::setprecision(3) << std::setw(12)
       << sim::to_seconds(r.at) << "s  " << std::setw(10) << r.node << "  "
       << std::setw(7) << r.direction << "  " << std::setw(18) << r.type
       << "  " << r.detail << '\n';
  }
  return os.str();
}

std::string TraceLog::to_json() const {
  // One escaper for the whole project: campaign::json handles \r and
  // control bytes without sign-extension, which the old local lambda got
  // wrong for chars >= 0x80 on signed-char platforms.
  const auto& escape = campaign::json::escape;
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Record& r = records_[i];
    if (i > 0) os << ",";
    os << "\n  {\"t_us\": " << r.at << ", \"node\": \"" << escape(r.node)
       << "\", \"dir\": \"" << escape(r.direction) << "\", \"type\": \""
       << escape(r.type) << "\", \"detail\": \"" << escape(r.detail)
       << "\"}";
  }
  os << "\n]\n";
  return os.str();
}

}  // namespace pfi::trace
