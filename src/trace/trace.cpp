#include "trace/trace.hpp"

#include <sstream>
#include <iomanip>

namespace pfi::trace {

void TraceLog::add(sim::TimePoint at, std::string node, std::string direction,
                   std::string type, std::string detail) {
  records_.push_back(Record{at, std::move(node), std::move(direction),
                            std::move(type), std::move(detail)});
}

std::vector<Record> TraceLog::select(
    const std::function<bool(const Record&)>& pred) const {
  std::vector<Record> out;
  for (const auto& r : records_) {
    if (pred(r)) out.push_back(r);
  }
  return out;
}

std::vector<Record> TraceLog::of_type(const std::string& type) const {
  return select([&](const Record& r) { return r.type == type; });
}

std::size_t TraceLog::count(const std::string& type,
                            const std::string& direction) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.type == type && (direction.empty() || r.direction == direction)) {
      ++n;
    }
  }
  return n;
}

std::vector<sim::TimePoint> TraceLog::times(
    const std::function<bool(const Record&)>& pred) const {
  std::vector<sim::TimePoint> out;
  for (const auto& r : records_) {
    if (pred(r)) out.push_back(r.at);
  }
  return out;
}

std::vector<sim::Duration> TraceLog::intervals(
    const std::vector<sim::TimePoint>& times) {
  std::vector<sim::Duration> out;
  for (std::size_t i = 1; i < times.size(); ++i) {
    out.push_back(times[i] - times[i - 1]);
  }
  return out;
}

std::optional<Record> TraceLog::first(
    const std::function<bool(const Record&)>& pred) const {
  for (const auto& r : records_) {
    if (pred(r)) return r;
  }
  return std::nullopt;
}

std::string TraceLog::render() const {
  std::ostringstream os;
  for (const auto& r : records_) {
    os << std::fixed << std::setprecision(3) << std::setw(12)
       << sim::to_seconds(r.at) << "s  " << std::setw(10) << r.node << "  "
       << std::setw(7) << r.direction << "  " << std::setw(18) << r.type
       << "  " << r.detail << '\n';
  }
  return os.str();
}

std::string TraceLog::to_json() const {
  auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  };
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Record& r = records_[i];
    if (i > 0) os << ",";
    os << "\n  {\"t_us\": " << r.at << ", \"node\": \"" << escape(r.node)
       << "\", \"dir\": \"" << escape(r.direction) << "\", \"type\": \""
       << escape(r.type) << "\", \"detail\": \"" << escape(r.detail)
       << "\"}";
  }
  os << "\n]\n";
  return os.str();
}

}  // namespace pfi::trace
