#include "trace/sequence.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pfi::trace {

namespace {

std::size_t lane_index(const std::vector<std::string>& lanes,
                       const std::string& name) {
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    if (lanes[i] == name) return i;
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

std::string render_sequence(const std::vector<std::string>& lanes,
                            const std::vector<SequenceEvent>& events,
                            int lane_width) {
  std::ostringstream os;
  const auto w = static_cast<std::size_t>(lane_width);
  const std::size_t time_col = 12;

  // Header: lane names centred over their lifelines.
  os << std::string(time_col, ' ');
  for (const auto& lane : lanes) {
    const std::size_t pad = w > lane.size() ? (w - lane.size()) / 2 : 0;
    os << std::string(pad, ' ') << lane
       << std::string(w - pad - std::min(lane.size(), w), ' ');
  }
  os << '\n';

  auto lifeline_row = [&](const std::string& prefix) {
    os << prefix;
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      os << std::string(w / 2, ' ') << '|' << std::string(w - w / 2 - 1, ' ');
    }
    os << '\n';
  };
  lifeline_row(std::string(time_col, ' '));

  for (const auto& ev : events) {
    char tbuf[16];
    std::snprintf(tbuf, sizeof tbuf, "%10.3fs ", sim::to_seconds(ev.at));
    const std::size_t a = lane_index(lanes, ev.from);
    const std::size_t b = lane_index(lanes, ev.to);
    os << tbuf;

    if (a == static_cast<std::size_t>(-1)) {
      // Pure annotation line.
      os << "  " << ev.label << '\n';
      continue;
    }
    if (b == static_cast<std::size_t>(-1) || a == b) {
      // Local event: a marker on the lane with the label beside it.
      for (std::size_t i = 0; i < lanes.size(); ++i) {
        if (i == a) {
          os << std::string(w / 2, ' ') << '*'
             << std::string(w - w / 2 - 1, ' ');
        } else {
          os << std::string(w / 2, ' ') << '|'
             << std::string(w - w / 2 - 1, ' ');
        }
      }
      os << ' ' << ev.label << '\n';
      continue;
    }

    // Arrow between two lanes. Draw each column segment.
    const std::size_t lo = std::min(a, b);
    const std::size_t hi = std::max(a, b);
    const bool rightward = a < b;
    std::string line;
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      const std::size_t centre = i * w + w / 2;
      line.resize(std::max(line.size(), centre + 1), ' ');
      line[centre] = '|';
    }
    const std::size_t from_c = lo * w + w / 2;
    const std::size_t to_c = hi * w + w / 2;
    for (std::size_t c = from_c + 1; c < to_c; ++c) line[c] = '-';
    if (rightward) {
      line[to_c - 1] = '>';
    } else {
      line[from_c + 1] = '<';
    }
    // Centre the label inside the arrow if it fits.
    if (!ev.label.empty() && ev.label.size() + 4 < to_c - from_c) {
      const std::size_t start =
          from_c + ((to_c - from_c) - ev.label.size()) / 2;
      for (std::size_t i = 0; i < ev.label.size(); ++i) {
        line[start + i] = ev.label[i];
      }
      os << line << '\n';
    } else {
      os << line << "  " << ev.label << '\n';
    }
  }
  return os.str();
}

std::vector<SequenceEvent> events_from_trace(
    const TraceLog& trace, const std::vector<std::string>& lanes,
    const std::string& peer, const std::string& type_prefix) {
  std::vector<SequenceEvent> out;
  for (const auto& r : trace.records()) {
    if (!type_prefix.empty() && r.type.rfind(type_prefix, 0) != 0) continue;
    SequenceEvent ev;
    ev.at = r.at;
    ev.label = r.type;
    if (r.direction == "send") {
      ev.from = r.node;
      ev.to = peer;
    } else if (r.direction == "recv") {
      ev.from = peer;
      ev.to = r.node;
    } else {
      ev.from = r.node;
      ev.label = r.type + (r.detail.empty() ? "" : " " + r.detail);
    }
    if (lane_index(lanes, ev.from) == static_cast<std::size_t>(-1) &&
        !ev.from.empty()) {
      continue;  // node not charted
    }
    out.push_back(std::move(ev));
  }
  return out;
}

}  // namespace pfi::trace
