// Timestamped experiment trace.
//
// Every experiment in the paper is evaluated by *logging packets with a
// timestamp* at the PFI layer (e.g. "each packet was logged with a timestamp
// by the receive filter script before it was dropped") and then reading
// intervals off the log. TraceLog is that notebook: scripts and layers append
// records; the experiment harness queries and renders them.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace pfi::trace {

struct Record {
  sim::TimePoint at = 0;
  std::string node;      // which node's PFI layer observed it
  std::string direction; // "send", "recv", "drop", "inject", "event", ...
  std::string type;      // packet type as reported by the recognition stub
  std::string detail;    // free-form (header fields, script annotations)
};

class TraceLog {
 public:
  void add(sim::TimePoint at, std::string node, std::string direction,
           std::string type, std::string detail = {});

  [[nodiscard]] const std::vector<Record>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  void clear() {
    records_.clear();
    dropped_ = 0;
    total_added_ = 0;
  }

  /// Bound the log's memory: keep at most `cap` records, evicting the
  /// *oldest* when full (the newest records are the ones an oracle or a
  /// minimizer wants). 0 (the default) means unlimited. Eviction happens in
  /// chunks of max(1, cap/8) so a full log pays one memmove per chunk, not
  /// per record.
  void set_capacity(std::size_t cap);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Records evicted by the capacity bound since the last clear().
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Records ever added since the last clear() (= size() + dropped()).
  [[nodiscard]] std::uint64_t total_added() const { return total_added_; }

  /// All records matching a predicate, in time order.
  [[nodiscard]] std::vector<Record> select(
      const std::function<bool(const Record&)>& pred) const;

  /// Records of a given type (exact match on the stub-reported type name).
  [[nodiscard]] std::vector<Record> of_type(const std::string& type) const;

  /// Count of records matching type and (optionally) direction.
  [[nodiscard]] std::size_t count(const std::string& type,
                                  const std::string& direction = {}) const;

  /// Timestamps of records matching a predicate.
  [[nodiscard]] std::vector<sim::TimePoint> times(
      const std::function<bool(const Record&)>& pred) const;

  /// Successive differences of `times` — the "retransmission intervals" the
  /// paper's tables report. Empty if fewer than two matches.
  [[nodiscard]] static std::vector<sim::Duration> intervals(
      const std::vector<sim::TimePoint>& times);

  /// First record matching the predicate, if any.
  [[nodiscard]] std::optional<Record> first(
      const std::function<bool(const Record&)>& pred) const;

  /// Render the whole log as a human-readable table (for examples/benches).
  [[nodiscard]] std::string render() const;

  /// Export as a JSON array of records (for external analysis tooling).
  [[nodiscard]] std::string to_json() const;

 private:
  std::vector<Record> records_;
  std::size_t capacity_ = 0;  // 0 = unlimited
  std::uint64_t dropped_ = 0;
  std::uint64_t total_added_ = 0;
};

}  // namespace pfi::trace
