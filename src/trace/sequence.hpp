// ASCII message-sequence charts from trace logs.
//
// Paper §4.1 explains the Solaris global-error-counter discovery with a
// hand-drawn A -> B sequence diagram. This module generates the same kind of
// diagram mechanically from the PFI trace, so every experiment can show its
// message flow:
//
//        A                    B
//        |----- m1 ---------->|
//        |<---- ACK m1 -------|  (delayed)
//        |----- m1 ---------->|  retransmit
//        ...
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace pfi::trace {

struct SequenceEvent {
  sim::TimePoint at = 0;
  std::string from;   // lane name; empty = annotation only
  std::string to;     // lane name; empty = local event on `from`
  std::string label;  // arrow/event label
};

/// Render events as a two-or-more-lane ASCII chart. Lanes appear in the
/// order given; events must be time-sorted (they are, coming from a trace).
std::string render_sequence(const std::vector<std::string>& lanes,
                            const std::vector<SequenceEvent>& events,
                            int lane_width = 24);

/// Build sequence events from a trace: "send"-direction records become
/// arrows from their node to `peer_of(node)`, "recv" records arrows into the
/// node, "inject"/"event" records become local events. `type_filter` keeps
/// only matching types (empty = all).
std::vector<SequenceEvent> events_from_trace(
    const TraceLog& trace, const std::vector<std::string>& lanes,
    const std::string& peer, const std::string& type_prefix = "");

}  // namespace pfi::trace
