#include "sim/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace pfi::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal(double mean, double variance) {
  const double stddev = std::sqrt(std::max(variance, 0.0));
  if (have_spare_) {
    have_spare_ = false;
    return mean + stddev * spare_;
  }
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 0.0);
  const double v = next_double();
  const double r = std::sqrt(-2.0 * std::log(u));
  const double theta = 2.0 * std::numbers::pi * v;
  spare_ = r * std::sin(theta);
  have_spare_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::exponential(double mean) {
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) {
  return next_double() < std::clamp(p, 0.0, 1.0);
}

Duration Rng::uniform_duration(Duration lo, Duration hi) {
  return uniform_int(lo, hi);
}

}  // namespace pfi::sim
