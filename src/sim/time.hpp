// Simulated-time primitives.
//
// The whole toolkit runs on a deterministic discrete-event clock. Time is an
// integral count of microseconds since simulation start; this gives exact,
// reproducible arithmetic (no floating-point drift) while still resolving the
// sub-millisecond retransmission timers the Solaris 2.3 profile needs.
#pragma once

#include <cstdint>

namespace pfi::sim {

/// A point in simulated time, in microseconds since simulation start.
using TimePoint = std::int64_t;

/// A span of simulated time, in microseconds.
using Duration = std::int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;
constexpr Duration kMinute = 60 * kSecond;
constexpr Duration kHour = 60 * kMinute;

constexpr Duration usec(std::int64_t n) { return n * kMicrosecond; }
constexpr Duration msec(std::int64_t n) { return n * kMillisecond; }
constexpr Duration sec(std::int64_t n) { return n * kSecond; }
constexpr Duration minutes(std::int64_t n) { return n * kMinute; }
constexpr Duration hours(std::int64_t n) { return n * kHour; }

/// Convert a duration to fractional seconds (for human-facing reports only).
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Convert a duration to fractional milliseconds.
constexpr double to_millis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

}  // namespace pfi::sim
