// Deterministic discrete-event scheduler.
//
// All asynchrony in the toolkit — network propagation delays, protocol
// retransmission timers, script-requested delays — is expressed as events on
// one scheduler. Events at equal timestamps fire in insertion order, so a
// given seed always replays the identical execution. This determinism is what
// lets the PFI experiments force "hard-to-reach" interleavings on purpose
// instead of hoping for them (paper §1).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace pfi::sim {

/// Handle to a scheduled event; used to cancel it before it fires.
using TimerId = std::uint64_t;

constexpr TimerId kInvalidTimer = 0;

/// Intrinsic instrumentation, always on: four integer updates per event is
/// cheap enough to never gate, and keeping it inside the scheduler means the
/// counts are a pure function of the simulation (exported into the campaign
/// metrics registry at collect time, never sampled off wall clocks).
struct SchedulerStats {
  std::uint64_t events_dispatched = 0;  // callbacks actually fired
  std::uint64_t timers_scheduled = 0;
  std::uint64_t timers_cancelled = 0;   // cancelled before firing
  std::uint64_t queue_high_water = 0;   // max live events ever queued
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `fn` to run `delay` from now. Negative delays clamp to zero
  /// (the event fires "immediately", after already-queued events at `now`).
  TimerId schedule(Duration delay, std::function<void()> fn);

  /// Schedule `fn` at an absolute time (clamped to `now`).
  TimerId schedule_at(TimePoint when, std::function<void()> fn);

  /// Cancel a pending event. Returns true if the event had not yet fired.
  bool cancel(TimerId id);

  /// True if `id` refers to an event that has not yet fired or been cancelled.
  [[nodiscard]] bool pending(TimerId id) const;

  /// Number of events still queued (including cancelled tombstones' live peers).
  [[nodiscard]] std::size_t queued() const { return live_.size(); }

  [[nodiscard]] const SchedulerStats& stats() const { return stats_; }

  /// Run a single event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue is empty or `max_events` have fired.
  /// Returns the number of events fired.
  std::size_t run(std::size_t max_events = kDefaultEventBudget);

  /// Run all events with timestamp <= `deadline`, then advance the clock to
  /// `deadline` (even if idle). Returns the number of events fired. If
  /// `max_events` stops the run with due events still queued, the clock
  /// stays at the last fired event so a follow-up call resumes seamlessly.
  std::size_t run_until(TimePoint deadline,
                        std::size_t max_events = kDefaultEventBudget);

  /// Run for `span` of simulated time from `now()`.
  std::size_t run_for(Duration span,
                      std::size_t max_events = kDefaultEventBudget);

  /// Guard against runaway event loops (e.g. a buggy protocol ping-ponging
  /// messages at zero delay). run()/run_until() stop after this many events
  /// by default; callers with legitimately long runs pass a larger budget.
  static constexpr std::size_t kDefaultEventBudget = 50'000'000;

 private:
  struct Event {
    TimePoint when = 0;
    std::uint64_t seq = 0;  // insertion order; breaks timestamp ties
    TimerId id = kInvalidTimer;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 1;
  TimerId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<TimerId> live_;
  SchedulerStats stats_;
};

/// RAII one-shot timer bound to a scheduler.
///
/// Protocol code holds a Timer per logical timeout (retransmit, keep-alive,
/// heartbeat-expect, ...). Destroying the Timer cancels any pending event, so
/// a destroyed connection can never fire a stale callback.
class Timer {
 public:
  explicit Timer(Scheduler& sched) : sched_(&sched) {}
  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Arm (or re-arm) the timer to fire `delay` from now.
  void arm(Duration delay, std::function<void()> fn) {
    cancel();
    fn_ = std::move(fn);
    id_ = sched_->schedule(delay, [this] {
      id_ = kInvalidTimer;
      // Move out first: the callback may re-arm this same timer.
      auto fn = std::move(fn_);
      fn_ = nullptr;
      fn();
    });
  }

  /// Cancel without firing. Safe if not armed.
  void cancel() {
    if (id_ != kInvalidTimer) {
      sched_->cancel(id_);
      id_ = kInvalidTimer;
      fn_ = nullptr;
    }
  }

  [[nodiscard]] bool armed() const { return id_ != kInvalidTimer; }

 private:
  Scheduler* sched_;
  TimerId id_ = kInvalidTimer;
  std::function<void()> fn_;
};

}  // namespace pfi::sim
