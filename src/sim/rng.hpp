// Seeded random-number source and the probability-distribution helpers the
// paper's script library exposes (dst_normal_mean_var etc., §3).
//
// A single splitmix64/xoshiro-style generator per simulation keeps runs
// reproducible: the same seed and script always yield the same fault pattern.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace pfi::sim {

/// Deterministic PRNG (xoshiro256** core, splitmix64 seeding).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Normal (Gaussian) with the given mean and variance (Box–Muller).
  double normal(double mean, double variance);

  /// Exponential with the given mean (= 1/rate).
  double exponential(double mean);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Convenience: a random duration uniform in [lo, hi].
  Duration uniform_duration(Duration lo, Duration hi);

 private:
  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace pfi::sim
