#include "sim/scheduler.hpp"

#include <algorithm>
#include <utility>

namespace pfi::sim {

TimerId Scheduler::schedule(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + std::max<Duration>(delay, 0), std::move(fn));
}

TimerId Scheduler::schedule_at(TimePoint when, std::function<void()> fn) {
  const TimerId id = next_id_++;
  Event ev;
  ev.when = std::max(when, now_);
  ev.seq = next_seq_++;
  ev.id = id;
  ev.fn = std::move(fn);
  queue_.push(std::move(ev));
  live_.insert(id);
  ++stats_.timers_scheduled;
  if (live_.size() > stats_.queue_high_water) {
    stats_.queue_high_water = live_.size();
  }
  return id;
}

bool Scheduler::cancel(TimerId id) {
  if (live_.erase(id) == 0) return false;
  ++stats_.timers_cancelled;
  return true;
}

bool Scheduler::pending(TimerId id) const { return live_.contains(id); }

bool Scheduler::step() {
  while (!queue_.empty()) {
    // priority_queue::top() is const; we need to move the callback out.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (live_.erase(ev.id) == 0) continue;  // cancelled tombstone
    now_ = ev.when;
    ++stats_.events_dispatched;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Scheduler::run(std::size_t max_events) {
  std::size_t fired = 0;
  while (fired < max_events && step()) ++fired;
  return fired;
}

std::size_t Scheduler::run_until(TimePoint deadline, std::size_t max_events) {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    // Peek past cancelled tombstones without firing anything late.
    if (!live_.contains(queue_.top().id)) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > deadline) break;
    // Budget-stopped with due events still queued: leave the clock at the
    // last fired event so a follow-up call resumes exactly where this one
    // left off (the campaign watchdog advances in slices this way).
    if (fired >= max_events) return fired;
    if (step()) ++fired;
  }
  now_ = std::max(now_, deadline);
  return fired;
}

std::size_t Scheduler::run_for(Duration span, std::size_t max_events) {
  return run_until(now_ + std::max<Duration>(span, 0), max_events);
}

}  // namespace pfi::sim
