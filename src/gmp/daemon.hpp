// Strong group-membership daemon (gmd), after [18] as described in paper
// §4.2: heartbeats for failure detection, PROCLAIM/JOIN for admission, and a
// leader-driven two-phase commit (MEMBERSHIP_CHANGE -> ACK/NAK -> COMMIT)
// that guarantees membership changes are seen in the same order by all
// members. The group's leader is the member with the lowest id; the "crown
// prince" (second-lowest) takes over if the leader dies.
//
// The paper tested a student prototype and found four real bugs. Each is
// reproduced here behind a GmpBugs flag so the PFI experiments can detect
// them exactly as the paper did, and so the fixed daemon can be shown to
// "behave as specified":
//
//   local_death_mishandled  — on missing its own heartbeats the gmd
//     announces its own death to the group and marks itself down, but stays
//     in the old group instead of forming a singleton (experiment 1).
//   proclaim_forward_param  — the routine forwarding a PROCLAIM to the
//     leader is called with a wrong-typed parameter and the packet is never
//     sent (experiment 1).
//   reply_to_forwarder      — the leader answers a forwarded PROCLAIM to the
//     forwarding member instead of the originator, creating the proclaim
//     loop (experiment 3).
//   timer_unregister_inverted — the NULL/non-NULL logic of the timeout
//     unregistration routine is inverted, so heartbeat-expect timers survive
//     into the IN_TRANSITION state (experiment 4).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "gmp/message.hpp"
#include "net/addr.hpp"
#include "sim/scheduler.hpp"
#include "trace/trace.hpp"
#include "xk/layer.hpp"

namespace pfi::gmp {

struct GmpBugs {
  bool local_death_mishandled = false;
  bool proclaim_forward_param = false;
  bool reply_to_forwarder = false;
  bool timer_unregister_inverted = false;

  [[nodiscard]] static GmpBugs none() { return {}; }
  [[nodiscard]] static GmpBugs all() { return {true, true, true, true}; }
};

struct GmpConfig {
  net::NodeId id = 0;
  std::vector<net::NodeId> peers;  // every potential member, self included
  net::Port port = 7777;
  sim::Duration heartbeat_period = sim::sec(1);
  sim::Duration heartbeat_timeout = sim::msec(3500);
  sim::Duration check_period = sim::msec(500);
  sim::Duration proclaim_period = sim::sec(2);
  sim::Duration mc_collect_timeout = sim::sec(2);   // leader gathers ACK/NAK
  sim::Duration commit_wait_timeout = sim::sec(5);  // member in transition
  GmpBugs bugs;
};

enum class GmdStatus { kAlone, kInGroup, kInTransition, kSuspended };

std::string to_string(GmdStatus s);

struct View {
  std::uint64_t id = 0;
  std::vector<net::NodeId> members;  // sorted ascending

  [[nodiscard]] bool contains(net::NodeId n) const;
  [[nodiscard]] net::NodeId leader() const;        // lowest id; 0 if empty
  [[nodiscard]] net::NodeId crown_prince() const;  // second lowest; 0 if none
  [[nodiscard]] std::string summary() const;
  bool operator==(const View&) const = default;
};

struct GmdStats {
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t proclaims_sent = 0;
  std::uint64_t proclaims_forwarded = 0;
  std::uint64_t forward_attempts_lost_to_bug = 0;
  std::uint64_t joins_sent = 0;
  std::uint64_t mc_initiated = 0;
  std::uint64_t commits_sent = 0;
  std::uint64_t views_committed = 0;
  std::uint64_t suspects_raised = 0;
  std::uint64_t self_death_events = 0;
  std::uint64_t transition_hb_timeouts = 0;  // the experiment-4 symptom
  std::uint64_t transition_aborts = 0;
  std::uint64_t death_reports_sent = 0;
};

class GmpDaemon : public xk::Layer {
 public:
  GmpDaemon(sim::Scheduler& sched, GmpConfig cfg,
            trace::TraceLog* trace = nullptr);

  /// Boot the daemon: starts as a singleton group and begins proclaiming.
  void start();

  /// Emulate Ctrl-Z / SIGTSTP for `span`: timers stop, incoming messages are
  /// ignored, and on resume every heartbeat-expect deadline has lapsed —
  /// exactly the paper's suspension test.
  void suspend_for(sim::Duration span);

  void pop(xk::Message msg) override;    // from the reliable layer
  void push(xk::Message msg) override;   // unused (daemon is the stack top)

  // --- introspection ---------------------------------------------------------
  [[nodiscard]] net::NodeId id() const { return cfg_.id; }
  [[nodiscard]] GmdStatus status() const { return status_; }
  [[nodiscard]] const View& view() const { return view_; }
  [[nodiscard]] const std::vector<View>& view_history() const {
    return history_;
  }
  [[nodiscard]] bool is_leader() const {
    return view_.leader() == cfg_.id && status_ != GmdStatus::kInTransition;
  }
  [[nodiscard]] bool believes_self_dead() const { return self_marked_dead_; }
  [[nodiscard]] const GmdStats& stats() const { return stats_; }
  [[nodiscard]] const GmpConfig& config() const { return cfg_; }

  std::function<void(const View&)> on_view_committed;

 private:
  // --- messaging ---------------------------------------------------------------
  void send_msg(net::NodeId to, const GmpMessage& m, SendMode mode);
  void broadcast_to_members(const GmpMessage& m, SendMode mode,
                            bool include_self);
  GmpMessage base_msg(MsgType type) const;

  // --- timers -----------------------------------------------------------------
  void start_heartbeating();
  void on_heartbeat_tick();
  void on_check_tick();
  void on_proclaim_tick();
  void unregister_expect_timers();  // the buggy routine of experiment 4
  void refresh_expectations();

  // --- protocol events ----------------------------------------------------------
  void handle(const GmpMessage& m, net::NodeId from);
  void on_heartbeat(const GmpMessage& m);
  void on_proclaim(const GmpMessage& m);
  void on_join(const GmpMessage& m);
  void on_membership_change(const GmpMessage& m);
  void on_mc_ack(const GmpMessage& m);
  void on_mc_nak(const GmpMessage& m);
  void on_commit(const GmpMessage& m);
  void on_death_report(const GmpMessage& m);

  /// Mint a fresh, globally unique view id: a sequence number (upper bits,
  /// monotone across everything this daemon has seen) tagged with the
  /// initiator's id (lower 16 bits). Two different initiators can therefore
  /// never produce the same id, which is what makes "same id => same
  /// membership" a checkable agreement property.
  std::uint64_t next_view_id();

  void suspect(net::NodeId node);
  void handle_self_death();
  void initiate_membership_change(std::vector<net::NodeId> proposed);
  void finish_collect();
  void commit_view(View v);
  void become_alone();
  void abort_transition(const std::string& why);

  void trace_event(const std::string& what, const std::string& detail = {});

  sim::Scheduler& sched_;
  GmpConfig cfg_;
  trace::TraceLog* trace_log_;

  GmdStatus status_ = GmdStatus::kAlone;
  View view_;
  std::vector<View> history_;
  std::uint64_t max_seen_view_ = 0;
  bool self_marked_dead_ = false;  // the local-death bug's broken state
  net::NodeId join_target_ = 0;    // leader we last sent a JOIN to
  std::set<net::NodeId> lost_members_;  // fell out of a committed view

  // Failure detection.
  std::map<net::NodeId, sim::TimePoint> last_heard_;
  std::set<net::NodeId> suspected_;
  bool expect_checking_ = true;

  // Two-phase change, leader side.
  bool collecting_ = false;
  std::uint64_t collect_view_id_ = 0;
  std::set<net::NodeId> proposed_;
  std::set<net::NodeId> acked_;
  std::set<net::NodeId> pending_joins_;
  sim::Timer collect_timer_;

  // Two-phase change, member side.
  std::uint64_t pending_commit_view_ = 0;
  sim::Timer commit_wait_timer_;

  sim::Timer hb_timer_;
  sim::Timer check_timer_;
  sim::Timer proclaim_timer_;
  sim::Timer resume_timer_;

  GmdStats stats_;
};

}  // namespace pfi::gmp
