#include "gmp/daemon.hpp"

#include <algorithm>
#include <sstream>

#include "net/layers.hpp"

namespace pfi::gmp {

std::string to_string(GmdStatus s) {
  switch (s) {
    case GmdStatus::kAlone: return "ALONE";
    case GmdStatus::kInGroup: return "IN_GROUP";
    case GmdStatus::kInTransition: return "IN_TRANSITION";
    case GmdStatus::kSuspended: return "SUSPENDED";
  }
  return "?";
}

bool View::contains(net::NodeId n) const {
  return std::find(members.begin(), members.end(), n) != members.end();
}

net::NodeId View::leader() const { return members.empty() ? 0 : members[0]; }

net::NodeId View::crown_prince() const {
  return members.size() < 2 ? 0 : members[1];
}

std::string View::summary() const {
  std::ostringstream os;
  os << "view " << id << " {";
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (i > 0) os << ',';
    os << members[i];
  }
  os << '}';
  return os.str();
}

GmpDaemon::GmpDaemon(sim::Scheduler& sched, GmpConfig cfg,
                     trace::TraceLog* trace)
    : Layer("gmd"),
      sched_(sched),
      cfg_(std::move(cfg)),
      trace_log_(trace),
      collect_timer_(sched),
      commit_wait_timer_(sched),
      hb_timer_(sched),
      check_timer_(sched),
      proclaim_timer_(sched),
      resume_timer_(sched) {}

void GmpDaemon::start() {
  view_ = View{next_view_id(), {cfg_.id}};
  history_.push_back(view_);
  ++stats_.views_committed;
  status_ = GmdStatus::kAlone;
  refresh_expectations();
  trace_event("start", view_.summary());
  on_heartbeat_tick();
  on_check_tick();
  on_proclaim_tick();
}

void GmpDaemon::suspend_for(sim::Duration span) {
  trace_event("suspend", std::to_string(span / sim::kSecond) + "s");
  const GmdStatus prev = status_;
  status_ = GmdStatus::kSuspended;
  resume_timer_.arm(span, [this, prev] {
    status_ = prev;
    trace_event("resume");
    // Timers kept ticking but were inert; heartbeat-expect deadlines have
    // all lapsed, exactly like a process that just got SIGCONT.
  });
}

void GmpDaemon::push(xk::Message msg) { send_down(std::move(msg)); }

void GmpDaemon::pop(xk::Message msg) {
  if (status_ == GmdStatus::kSuspended) return;  // stopped process reads nothing
  net::UdpMeta meta = net::UdpMeta::pop_from(msg);
  GmpMessage m;
  if (!GmpMessage::decode(msg, m)) return;
  handle(m, meta.remote);
}

// ---------------------------------------------------------------------------
// Messaging helpers
// ---------------------------------------------------------------------------

GmpMessage GmpDaemon::base_msg(MsgType type) const {
  GmpMessage m;
  m.type = type;
  m.sender = cfg_.id;
  m.originator = cfg_.id;
  m.view_id = view_.id;
  return m;
}

void GmpDaemon::send_msg(net::NodeId to, const GmpMessage& m, SendMode mode) {
  xk::Message msg = m.encode();
  const auto ctrl = static_cast<std::uint8_t>(mode);
  msg.push_header(std::span{&ctrl, 1});
  net::UdpMeta meta;
  meta.remote = to;
  meta.remote_port = cfg_.port;
  meta.local_port = cfg_.port;
  meta.push_onto(msg);
  send_down(std::move(msg));
}

void GmpDaemon::broadcast_to_members(const GmpMessage& m, SendMode mode,
                                     bool include_self) {
  for (net::NodeId peer : view_.members) {
    if (!include_self && peer == cfg_.id) continue;
    send_msg(peer, m, mode);
  }
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

void GmpDaemon::on_heartbeat_tick() {
  hb_timer_.arm(cfg_.heartbeat_period, [this] { on_heartbeat_tick(); });
  if (status_ == GmdStatus::kSuspended ||
      status_ == GmdStatus::kInTransition) {
    return;
  }
  if (self_marked_dead_) {
    // The local-death bug's broken state: no heartbeats, and the daemon
    // keeps pushing "I am dead" reports at the group — the paper's "continue
    // to send bad information to the other gmds".
    GmpMessage m = base_msg(MsgType::kDeathReport);
    m.subject = cfg_.id;
    broadcast_to_members(m, SendMode::kRaw, false);
    stats_.death_reports_sent += view_.members.size() - 1;
    return;
  }
  GmpMessage hb = base_msg(MsgType::kHeartbeat);
  broadcast_to_members(hb, SendMode::kRaw, true);  // self included (loopback)
  stats_.heartbeats_sent += view_.members.size();
}

void GmpDaemon::on_check_tick() {
  check_timer_.arm(cfg_.check_period, [this] { on_check_tick(); });
  if (status_ == GmdStatus::kSuspended || !expect_checking_) return;
  // The local-death bug's frozen state: a daemon that believes itself dead
  // stops evaluating liveness (it never forms a singleton and never
  // recovers) while still limping along forwarding messages — the paper's
  // "did not update its own local state very well".
  if (self_marked_dead_) return;

  std::vector<net::NodeId> stale;
  for (const auto& [node, t] : last_heard_) {
    if (sched_.now() - t > cfg_.heartbeat_timeout) stale.push_back(node);
  }
  if (stale.empty()) return;

  // "I missed my own heartbeats" dominates any observation about others.
  if (auto self_it = std::find(stale.begin(), stale.end(), cfg_.id);
      self_it != stale.end() && status_ != GmdStatus::kInTransition) {
    last_heard_[cfg_.id] = sched_.now();
    suspect(cfg_.id);
    return;
  }

  if (status_ == GmdStatus::kInTransition) {
    // Only reachable with the inverted-unregister bug: "compsun1 timed out
    // waiting for a heartbeat message from the leader" while no timer but
    // the MEMBERSHIP_CHANGE timer was supposed to be set.
    ++stats_.transition_hb_timeouts;
    trace_event("transition-hb-timeout",
                "heartbeat-expect fired in IN_TRANSITION for node " +
                    std::to_string(stale.front()));
    abort_transition("spurious heartbeat timeout during transition");
    return;
  }
  for (net::NodeId node : stale) {
    last_heard_[node] = sched_.now();  // re-arm; commit/refresh will clear
    suspect(node);
    if (status_ != GmdStatus::kInGroup && status_ != GmdStatus::kAlone) break;
  }
}

void GmpDaemon::on_proclaim_tick() {
  proclaim_timer_.arm(cfg_.proclaim_period, [this] { on_proclaim_tick(); });
  if (status_ == GmdStatus::kSuspended ||
      status_ == GmdStatus::kInTransition || self_marked_dead_) {
    return;
  }
  const bool singleton = view_.members.size() == 1;
  const bool leading = view_.leader() == cfg_.id;
  if (!singleton && !leading) return;
  // Singletons proclaim to everyone (they desire membership). A group
  // leader only tries to reclaim *lost members* — nodes that were once in a
  // committed view and fell out (partition, crash) — so healed partitions
  // re-merge. Leaders never proclaim to strangers: a new joiner must knock
  // first (which is what makes the proclaim-forwarding experiment
  // meaningful).
  GmpMessage m = base_msg(MsgType::kProclaim);
  for (net::NodeId peer : cfg_.peers) {
    if (peer == cfg_.id) continue;
    if (!singleton && !lost_members_.contains(peer)) continue;
    send_msg(peer, m, SendMode::kRaw);
    ++stats_.proclaims_sent;
  }
}

void GmpDaemon::unregister_expect_timers() {
  if (cfg_.bugs.timer_unregister_inverted) {
    // The paper's bug: "if an argument is NULL, all timeouts of the same
    // type are unregistered. If the argument is non-NULL, only the first is
    // unregistered. It worked the opposite of how it should have."
    // Here: asked to unregister ALL, it removes only one entry and leaves
    // checking armed — so the leader's heartbeat-expect deadline survives
    // into IN_TRANSITION and fires ("compsun1 timed out waiting for a
    // heartbeat message from the leader").
    if (!last_heard_.empty()) last_heard_.erase(std::prev(last_heard_.end()));
    return;
  }
  last_heard_.clear();
  expect_checking_ = false;
}

void GmpDaemon::refresh_expectations() {
  last_heard_.clear();
  suspected_.clear();
  for (net::NodeId m : view_.members) last_heard_[m] = sched_.now();
  expect_checking_ = true;
}

// ---------------------------------------------------------------------------
// Protocol events
// ---------------------------------------------------------------------------

void GmpDaemon::handle(const GmpMessage& m, net::NodeId /*from*/) {
  switch (m.type) {
    case MsgType::kHeartbeat: on_heartbeat(m); break;
    case MsgType::kProclaim: on_proclaim(m); break;
    case MsgType::kJoin: on_join(m); break;
    case MsgType::kMembershipChange: on_membership_change(m); break;
    case MsgType::kMcAck: on_mc_ack(m); break;
    case MsgType::kMcNak: on_mc_nak(m); break;
    case MsgType::kCommit: on_commit(m); break;
    case MsgType::kDeathReport: on_death_report(m); break;
  }
}

void GmpDaemon::on_heartbeat(const GmpMessage& m) {
  // Heartbeats from outside the group carry no liveness obligation; tracking
  // them would make the failure detector suspect strangers.
  if (!view_.contains(m.sender)) return;
  last_heard_[m.sender] = sched_.now();
  suspected_.erase(m.sender);
}

void GmpDaemon::on_proclaim(const GmpMessage& m) {
  const bool i_lead = view_.leader() == cfg_.id &&
                      status_ != GmdStatus::kInTransition;
  if (cfg_.bugs.reply_to_forwarder && i_lead && m.sender != m.originator) {
    // BUG (experiment 3): respond to whoever forwarded the message, not to
    // the originator — which bounces a proclaim between leader and
    // forwarder forever while the real joiner hears nothing.
    GmpMessage reply = base_msg(MsgType::kProclaim);
    send_msg(m.sender, reply, SendMode::kRaw);
    ++stats_.proclaims_sent;
    trace_event("proclaim-loop-reply",
                "replied to forwarder " + std::to_string(m.sender) +
                    " instead of originator " + std::to_string(m.originator));
    return;
  }
  if (m.originator == cfg_.id) return;

  if (i_lead) {
    if (cfg_.id < m.originator) {
      // Invite the (higher-id) proclaimer to join us.
      GmpMessage reply = base_msg(MsgType::kProclaim);
      send_msg(m.originator, reply, SendMode::kRaw);
      ++stats_.proclaims_sent;
    } else {
      // They outrank us: defect to them.
      GmpMessage join = base_msg(MsgType::kJoin);
      send_msg(m.originator, join, SendMode::kReliable);
      join_target_ = m.originator;
      ++stats_.joins_sent;
    }
    return;
  }
  if (status_ == GmdStatus::kInGroup) {
    if (m.originator < view_.leader()) {
      // A lower-id leader exists: join it (paper's partition-heal path).
      GmpMessage join = base_msg(MsgType::kJoin);
      send_msg(m.originator, join, SendMode::kReliable);
      join_target_ = m.originator;
      ++stats_.joins_sent;
      return;
    }
    // Forward to our leader.
    if (cfg_.bugs.proclaim_forward_param) {
      // BUG (experiment 1): "a routine was being called with the wrong type
      // of parameter, which resulted in the packet not being forwarded at
      // all."
      ++stats_.forward_attempts_lost_to_bug;
      trace_event("proclaim-forward-lost",
                  "forwarding to leader silently failed (parameter bug)");
      return;
    }
    GmpMessage fwd = m;
    fwd.sender = cfg_.id;
    send_msg(view_.leader(), fwd, SendMode::kRaw);
    ++stats_.proclaims_forwarded;
  }
  // IN_TRANSITION daemons ignore proclaims.
}

void GmpDaemon::on_join(const GmpMessage& m) {
  if (view_.leader() != cfg_.id || status_ == GmdStatus::kInTransition) {
    return;
  }
  if (collecting_) {
    pending_joins_.insert(m.sender);
    return;
  }
  if (view_.contains(m.sender) && !suspected_.contains(m.sender)) return;
  std::vector<net::NodeId> proposed = view_.members;
  for (net::NodeId s : suspected_) std::erase(proposed, s);
  proposed.push_back(m.sender);
  initiate_membership_change(std::move(proposed));
}

void GmpDaemon::on_membership_change(const GmpMessage& m) {
  const bool valid_leader =
      !m.members.empty() && m.sender == m.members.front() &&
      std::is_sorted(m.members.begin(), m.members.end());
  View proposal{m.view_id, m.members};
  if (!valid_leader || !proposal.contains(cfg_.id)) return;
  // Only someone we currently recognise may pull us into a new group: a
  // member of our view (our leader, or the crown prince after the leader's
  // death), the leader we just sent a JOIN to (defection), or anyone at all
  // while we stand alone. A stranger's proposal — e.g. an evicted ex-member
  // trying to reclaim followers — is ignored.
  if (view_.members.size() > 1 && !view_.contains(m.sender) &&
      m.sender != join_target_) {
    return;
  }
  if (m.view_id <= max_seen_view_) {
    GmpMessage nak = base_msg(MsgType::kMcNak);
    nak.view_id = m.view_id;
    send_msg(m.sender, nak, SendMode::kReliable);
    return;
  }
  max_seen_view_ = m.view_id;
  if (collecting_) {  // someone with a fresher change outranks our collect
    collecting_ = false;
    collect_timer_.cancel();
    pending_joins_.clear();
  }
  trace_event("membership-change-accepted", m.summary());
  status_ = GmdStatus::kInTransition;
  unregister_expect_timers();  // the experiment-4 code path
  pending_commit_view_ = m.view_id;
  GmpMessage ack = base_msg(MsgType::kMcAck);
  ack.view_id = m.view_id;
  send_msg(m.sender, ack, SendMode::kReliable);
  commit_wait_timer_.arm(cfg_.commit_wait_timeout, [this] {
    ++stats_.transition_aborts;
    abort_transition("COMMIT never arrived");
  });
}

void GmpDaemon::on_mc_ack(const GmpMessage& m) {
  if (!collecting_ || m.view_id != collect_view_id_) return;
  acked_.insert(m.sender);
  bool all = true;
  for (net::NodeId p : proposed_) {
    if (!acked_.contains(p)) {
      all = false;
      break;
    }
  }
  if (all) finish_collect();
}

void GmpDaemon::on_mc_nak(const GmpMessage& m) {
  if (!collecting_ || m.view_id != collect_view_id_) return;
  proposed_.erase(m.sender);
  bool all = true;
  for (net::NodeId p : proposed_) {
    if (!acked_.contains(p)) {
      all = false;
      break;
    }
  }
  if (all) finish_collect();
}

void GmpDaemon::on_commit(const GmpMessage& m) {
  if (status_ != GmdStatus::kInTransition) return;
  if (m.view_id != pending_commit_view_) return;
  View v{m.view_id, m.members};
  if (!v.contains(cfg_.id) || m.sender != v.leader()) return;
  commit_view(std::move(v));
}

void GmpDaemon::on_death_report(const GmpMessage& m) {
  if (m.subject == cfg_.id) return;  // reports about us are noise
  if (status_ != GmdStatus::kInGroup && status_ != GmdStatus::kAlone) return;
  if (!view_.contains(m.sender)) return;  // only members may accuse
  if (!view_.contains(m.subject)) return;
  suspected_.insert(m.subject);
  std::vector<net::NodeId> alive = view_.members;
  for (net::NodeId s : suspected_) std::erase(alive, s);
  if (!alive.empty() && alive.front() == cfg_.id) {
    initiate_membership_change(std::move(alive));
  }
}

// ---------------------------------------------------------------------------
// Failure handling and view changes
// ---------------------------------------------------------------------------

std::uint64_t GmpDaemon::next_view_id() {
  const std::uint64_t seq = (max_seen_view_ >> 16) + 1;
  max_seen_view_ = (seq << 16) | (cfg_.id & 0xFFFF);
  return max_seen_view_;
}

void GmpDaemon::suspect(net::NodeId node) {
  ++stats_.suspects_raised;
  trace_event("suspect", "node " + std::to_string(node));
  if (node == cfg_.id) {
    handle_self_death();
    return;
  }
  suspected_.insert(node);
  std::vector<net::NodeId> alive = view_.members;
  for (net::NodeId s : suspected_) std::erase(alive, s);
  if (alive.empty()) return;
  if (alive.front() == cfg_.id) {
    // We are the effective leader of the survivors (possibly as crown
    // prince after the leader's death): run the two-phase change.
    if (!collecting_) initiate_membership_change(std::move(alive));
  } else {
    GmpMessage report = base_msg(MsgType::kDeathReport);
    report.subject = node;
    send_msg(alive.front(), report, SendMode::kReliable);
    ++stats_.death_reports_sent;
  }
}

void GmpDaemon::handle_self_death() {
  ++stats_.self_death_events;
  if (cfg_.bugs.local_death_mishandled) {
    // BUG (experiment 1): announce our own death and mark ourselves down,
    // but stay in the old group instead of forming a singleton.
    trace_event("self-death-mishandled",
                "announced own death; staying in old group marked dead");
    GmpMessage m = base_msg(MsgType::kDeathReport);
    m.subject = cfg_.id;
    broadcast_to_members(m, SendMode::kReliable, false);
    stats_.death_reports_sent += view_.members.size() - 1;
    self_marked_dead_ = true;
    return;
  }
  trace_event("self-death-reset",
              "missed own heartbeats; forming singleton group");
  become_alone();
}

void GmpDaemon::initiate_membership_change(std::vector<net::NodeId> proposed) {
  std::sort(proposed.begin(), proposed.end());
  proposed.erase(std::unique(proposed.begin(), proposed.end()),
                 proposed.end());
  if (proposed.empty() || proposed.front() != cfg_.id) return;
  if (proposed == view_.members && suspected_.empty() &&
      status_ == GmdStatus::kInGroup) {
    return;  // nothing would change
  }
  ++stats_.mc_initiated;
  collecting_ = true;
  collect_view_id_ = next_view_id();
  proposed_.clear();
  proposed_.insert(proposed.begin(), proposed.end());
  acked_ = {cfg_.id};
  trace_event("mc-initiate",
              View{collect_view_id_, proposed}.summary());
  // The leader is itself "in transition" while the group reforms.
  status_ = GmdStatus::kInTransition;
  unregister_expect_timers();
  GmpMessage mc = base_msg(MsgType::kMembershipChange);
  mc.view_id = collect_view_id_;
  mc.members = proposed;
  for (net::NodeId p : proposed) {
    if (p != cfg_.id) send_msg(p, mc, SendMode::kReliable);
  }
  if (proposed.size() == 1) {
    finish_collect();  // nobody to wait for
    return;
  }
  collect_timer_.arm(cfg_.mc_collect_timeout, [this] { finish_collect(); });
}

void GmpDaemon::finish_collect() {
  if (!collecting_) return;
  collecting_ = false;
  collect_timer_.cancel();
  std::vector<net::NodeId> final_members;
  for (net::NodeId p : proposed_) {
    if (acked_.contains(p)) final_members.push_back(p);
  }
  if (final_members.empty() || final_members.front() != cfg_.id) {
    final_members = {cfg_.id};
  }
  View v{collect_view_id_, final_members};
  GmpMessage commit = base_msg(MsgType::kCommit);
  commit.view_id = v.id;
  commit.members = v.members;
  for (net::NodeId p : v.members) {
    if (p != cfg_.id) {
      send_msg(p, commit, SendMode::kReliable);
      ++stats_.commits_sent;
    }
  }
  commit_view(std::move(v));
  // Joiners that knocked while we were busy get the next round.
  if (!pending_joins_.empty()) {
    std::vector<net::NodeId> proposed = view_.members;
    for (net::NodeId j : pending_joins_) proposed.push_back(j);
    pending_joins_.clear();
    initiate_membership_change(std::move(proposed));
  }
}

void GmpDaemon::commit_view(View v) {
  trace_event("commit", v.summary());
  // Track members that fell out of the group so the leader can try to
  // reclaim them later (partition heal); anyone re-admitted stops being lost.
  for (net::NodeId old : view_.members) {
    if (old != cfg_.id && !v.contains(old)) lost_members_.insert(old);
  }
  for (net::NodeId now : v.members) lost_members_.erase(now);
  view_ = std::move(v);
  status_ = GmdStatus::kInGroup;
  join_target_ = 0;
  pending_commit_view_ = 0;
  commit_wait_timer_.cancel();
  self_marked_dead_ = false;
  refresh_expectations();
  history_.push_back(view_);
  ++stats_.views_committed;
  if (on_view_committed) on_view_committed(view_);
}

void GmpDaemon::become_alone() {
  collecting_ = false;
  collect_timer_.cancel();
  commit_wait_timer_.cancel();
  pending_commit_view_ = 0;
  pending_joins_.clear();
  lost_members_.clear();  // a singleton proclaims to everyone anyway
  self_marked_dead_ = false;
  view_ = View{next_view_id(), {cfg_.id}};
  status_ = GmdStatus::kAlone;
  refresh_expectations();
  history_.push_back(view_);
  ++stats_.views_committed;
  trace_event("singleton", view_.summary());
  if (on_view_committed) on_view_committed(view_);
}

void GmpDaemon::abort_transition(const std::string& why) {
  trace_event("transition-abort", why);
  become_alone();
}

void GmpDaemon::trace_event(const std::string& what,
                            const std::string& detail) {
  if (trace_log_ == nullptr) return;
  trace_log_->add(sched_.now(), "gmd-" + std::to_string(cfg_.id), "event",
                  "gmp-" + what, detail);
}

}  // namespace pfi::gmp
