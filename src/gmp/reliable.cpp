#include "gmp/reliable.hpp"

namespace pfi::gmp {

ReliableLayer::ReliableLayer(sim::Scheduler& sched, ReliableConfig cfg)
    : Layer("rel"), sched_(sched), cfg_(cfg) {}

ReliableLayer::~ReliableLayer() {
  for (auto& [k, p] : pending_) sched_.cancel(p.timer);
}

void ReliableLayer::reset() {
  for (auto& [k, p] : pending_) sched_.cancel(p.timer);
  pending_.clear();
}

void ReliableLayer::push(xk::Message msg) {
  net::UdpMeta meta = net::UdpMeta::pop_from(msg);
  auto ctrl_bytes = msg.pop_header(1);
  const SendMode mode = ctrl_bytes.empty()
                            ? SendMode::kRaw
                            : static_cast<SendMode>(ctrl_bytes[0]);

  RelHeader rel;
  if (mode == SendMode::kReliable) {
    rel.kind = RelKind::kData;
    rel.seq = next_seq_[meta.remote]++;
  } else {
    rel.kind = RelKind::kRaw;
    rel.seq = 0;
  }
  rel.push_onto(msg);
  meta.push_onto(msg);

  if (mode == SendMode::kReliable) {
    ++stats_.data_sent;
    const std::uint64_t k = key(meta.remote, rel.seq);
    Pending p;
    p.wire = msg;  // keep a copy for retransmission
    p.peer = meta.remote;
    p.seq = rel.seq;
    pending_[k] = std::move(p);
    arm_retry(k);
  } else {
    ++stats_.raw_sent;
  }
  send_down(std::move(msg));
}

void ReliableLayer::pop(xk::Message msg) {
  net::UdpMeta meta = net::UdpMeta::pop_from(msg);
  RelHeader rel;
  if (!RelHeader::pop_from(msg, rel)) return;  // runt

  switch (rel.kind) {
    case RelKind::kAck: {
      ++stats_.acks_received;
      auto it = pending_.find(key(meta.remote, rel.seq));
      if (it != pending_.end()) {
        sched_.cancel(it->second.timer);
        pending_.erase(it);
      }
      return;
    }
    case RelKind::kData: {
      // Acknowledge, then deduplicate.
      RelHeader ack;
      ack.kind = RelKind::kAck;
      ack.seq = rel.seq;
      xk::Message ack_msg;
      ack.push_onto(ack_msg);
      net::UdpMeta ack_meta = meta;  // remote already = the sender
      ack_meta.push_onto(ack_msg);
      ++stats_.acks_sent;
      send_down(std::move(ack_msg));

      auto& seen = seen_[meta.remote];
      if (!seen.insert(rel.seq).second) {
        ++stats_.duplicates_suppressed;
        return;
      }
      if (seen.size() > 1024) seen.erase(seen.begin());  // bound memory
      break;
    }
    case RelKind::kRaw:
      break;
  }
  meta.push_onto(msg);
  send_up(std::move(msg));
}

void ReliableLayer::arm_retry(std::uint64_t k) {
  auto it = pending_.find(k);
  if (it == pending_.end()) return;
  it->second.timer =
      sched_.schedule(cfg_.retry_interval, [this, k] { on_retry(k); });
}

void ReliableLayer::on_retry(std::uint64_t k) {
  auto it = pending_.find(k);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  if (p.retries >= cfg_.max_retries) {
    ++stats_.gave_up;
    pending_.erase(it);
    return;
  }
  ++p.retries;
  ++stats_.retransmits;
  send_down(p.wire);  // resend a copy
  arm_retry(k);
}

}  // namespace pfi::gmp
