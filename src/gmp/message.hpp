// GMP wire messages and the reliable-communication header.
//
// The paper's GMP prototype ran "as a user-level server ... on top of UDP"
// with "a reliable communication layer ... implemented using retransmission
// timers and sequence numbers". Stack layout here (top to bottom):
//
//   GmpDaemon | ReliableLayer | [PFI] | UdpLayer | IpLayer | NetDev
//
// Formats (big-endian):
//
//   daemon -> reliable (and reliable -> daemon):
//     UdpMeta (8) | ctrl u8 (0 = raw, 1 = reliable) | GmpMessage
//     (upward the ctrl byte is absent: UdpMeta | GmpMessage)
//
//   reliable -> UDP (what the PFI layer sees, both directions):
//     UdpMeta (8) | RelHeader (5) | GmpMessage
//
//   RelHeader: kind u8 (0 = DATA, 1 = ACK, 2 = RAW) | seq u32
//
//   GmpMessage: type u8 | sender u32 | originator u32 | subject u32 |
//               view_id u64 | member_count u16 | members u32 * n
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/addr.hpp"
#include "xk/message.hpp"

namespace pfi::gmp {

enum class MsgType : std::uint8_t {
  kHeartbeat = 1,
  kProclaim = 2,
  kJoin = 3,
  kMembershipChange = 4,
  kMcAck = 5,
  kMcNak = 6,
  kCommit = 7,
  kDeathReport = 8,
};

std::string to_string(MsgType t);

struct GmpMessage {
  MsgType type = MsgType::kHeartbeat;
  net::NodeId sender = 0;      // who transmitted this copy (forwarders rewrite)
  net::NodeId originator = 0;  // who the message is ultimately from
  net::NodeId subject = 0;     // DEATH_REPORT: the suspected-dead node
  std::uint64_t view_id = 0;
  std::vector<net::NodeId> members;  // MC / COMMIT proposals

  [[nodiscard]] xk::Message encode() const;
  static bool decode(const xk::Message& msg, GmpMessage& out);
  /// Parse at a byte offset without consuming (for the recognition stub).
  static bool peek(const xk::Message& msg, std::size_t at, GmpMessage& out);
  [[nodiscard]] std::string summary() const;
};

enum class RelKind : std::uint8_t { kData = 0, kAck = 1, kRaw = 2 };

struct RelHeader {
  RelKind kind = RelKind::kRaw;
  std::uint32_t seq = 0;

  static constexpr std::size_t kSize = 5;
  void push_onto(xk::Message& msg) const;
  static bool pop_from(xk::Message& msg, RelHeader& out);
  static bool peek(const xk::Message& msg, std::size_t at, RelHeader& out);
};

/// Control byte the daemon prefixes to tell the reliable layer how to ship.
enum class SendMode : std::uint8_t { kRaw = 0, kReliable = 1 };

}  // namespace pfi::gmp
