#include "gmp/message.hpp"

#include <sstream>

namespace pfi::gmp {

std::string to_string(MsgType t) {
  switch (t) {
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kProclaim: return "proclaim";
    case MsgType::kJoin: return "join";
    case MsgType::kMembershipChange: return "membership-change";
    case MsgType::kMcAck: return "mc-ack";
    case MsgType::kMcNak: return "mc-nak";
    case MsgType::kCommit: return "commit";
    case MsgType::kDeathReport: return "death-report";
  }
  return "?";
}

xk::Message GmpMessage::encode() const {
  xk::Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(sender);
  w.u32(originator);
  w.u32(subject);
  w.u64(view_id);
  w.u16(static_cast<std::uint16_t>(members.size()));
  for (net::NodeId m : members) w.u32(m);
  xk::Message msg;
  w.push_onto(msg);
  return msg;
}

bool GmpMessage::peek(const xk::Message& msg, std::size_t at,
                      GmpMessage& out) {
  if (msg.size() < at) return false;
  xk::Reader r{msg.bytes().subspan(at)};
  out.type = static_cast<MsgType>(r.u8());
  out.sender = r.u32();
  out.originator = r.u32();
  out.subject = r.u32();
  out.view_id = r.u64();
  const std::uint16_t n = r.u16();
  out.members.clear();
  for (std::uint16_t i = 0; i < n; ++i) out.members.push_back(r.u32());
  return !r.truncated();
}

bool GmpMessage::decode(const xk::Message& msg, GmpMessage& out) {
  return peek(msg, 0, out);
}

std::string GmpMessage::summary() const {
  std::ostringstream os;
  os << to_string(type) << " sender=" << sender << " orig=" << originator;
  if (type == MsgType::kDeathReport) os << " subject=" << subject;
  if (view_id != 0) os << " view=" << view_id;
  if (!members.empty()) {
    os << " members={";
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i > 0) os << ',';
      os << members[i];
    }
    os << '}';
  }
  return os.str();
}

void RelHeader::push_onto(xk::Message& msg) const {
  xk::Writer w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(seq);
  w.push_onto(msg);
}

bool RelHeader::pop_from(xk::Message& msg, RelHeader& out) {
  if (!peek(msg, 0, out)) return false;
  msg.pop_header(kSize);
  return true;
}

bool RelHeader::peek(const xk::Message& msg, std::size_t at, RelHeader& out) {
  if (msg.size() < at + kSize) return false;
  xk::Reader r{msg.bytes().subspan(at)};
  out.kind = static_cast<RelKind>(r.u8());
  out.seq = r.u32();
  return true;
}

}  // namespace pfi::gmp
