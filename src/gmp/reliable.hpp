// Reliable communication layer over UDP (retransmission timers + sequence
// numbers), as in the paper's GMP prototype. Sits between the daemon and the
// UDP layer; the PFI layer is spliced directly below it — "into the
// communication interface code where udp send and receive calls were made".
//
// Semantics: per-peer sequence numbers; DATA messages are retransmitted on a
// fixed interval until ACKed or the retry budget is exhausted (then silently
// abandoned — the membership protocol above owns liveness); duplicates are
// suppressed at the receiver; RAW messages (heartbeats) bypass all of it.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "gmp/message.hpp"
#include "net/layers.hpp"
#include "sim/scheduler.hpp"
#include "xk/layer.hpp"

namespace pfi::gmp {

struct ReliableConfig {
  sim::Duration retry_interval = sim::msec(500);
  int max_retries = 5;
};

struct ReliableStats {
  std::uint64_t data_sent = 0;
  std::uint64_t raw_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t gave_up = 0;
  std::uint64_t duplicates_suppressed = 0;
};

class ReliableLayer : public xk::Layer {
 public:
  ReliableLayer(sim::Scheduler& sched, ReliableConfig cfg = {});
  ~ReliableLayer() override;

  void push(xk::Message msg) override;  // UdpMeta | ctrl | payload from daemon
  void pop(xk::Message msg) override;   // UdpMeta | RelHeader | payload

  [[nodiscard]] const ReliableStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }

  /// Drop all unacked state (used when the daemon is suspended/reset).
  void reset();

 private:
  struct Pending {
    xk::Message wire;  // full downward message (UdpMeta | RelHeader | payload)
    net::NodeId peer = 0;
    std::uint32_t seq = 0;
    int retries = 0;
    sim::TimerId timer = sim::kInvalidTimer;
  };

  static std::uint64_t key(net::NodeId peer, std::uint32_t seq) {
    return (static_cast<std::uint64_t>(peer) << 32) | seq;
  }
  void arm_retry(std::uint64_t k);
  void on_retry(std::uint64_t k);

  sim::Scheduler& sched_;
  ReliableConfig cfg_;
  std::map<std::uint64_t, Pending> pending_;
  std::map<net::NodeId, std::uint32_t> next_seq_;
  std::map<net::NodeId, std::set<std::uint32_t>> seen_;  // dedup (bounded)
  ReliableStats stats_;
};

}  // namespace pfi::gmp
