#include "campaign/watchdog.hpp"

namespace pfi::campaign {

std::string Watchdog::wall_reason(int timeout_ms) {
  return "timeout: wall-clock budget " + std::to_string(timeout_ms) +
         " ms exceeded";
}

std::string Watchdog::events_reason(std::uint64_t max_sim_events) {
  return "timeout: sim event budget " + std::to_string(max_sim_events) +
         " exceeded";
}

void Watchdog::add_sim_events(std::size_t n) {
  sim_events_ += n;
  if (reason_.empty() && max_sim_events_ > 0 &&
      sim_events_ > max_sim_events_) {
    reason_ = events_reason(max_sim_events_);
  }
}

bool Watchdog::check() {
  if (!reason_.empty()) return true;
  if (max_sim_events_ > 0 && sim_events_ > max_sim_events_) {
    reason_ = events_reason(max_sim_events_);
    return true;
  }
  if (timeout_ms_ > 0) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
    if (elapsed > timeout_ms_) {
      reason_ = wall_reason(timeout_ms_);
      return true;
    }
  }
  return false;
}

}  // namespace pfi::campaign
