#include "campaign/schedule.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace pfi::campaign {

using core::scriptgen::FaultKind;

namespace {

/// Message types become Tcl variable suffixes; keep only [A-Za-z0-9_].
std::string sanitize(const std::string& type) {
  std::string out;
  out.reserve(type.size());
  for (char c : type) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  if (out.empty()) out = "any";
  return out;
}

std::string action_for(const FaultEvent& e) {
  std::ostringstream os;
  switch (e.kind) {
    case FaultKind::kDrop:
      os << "xDrop cur_msg";
      break;
    case FaultKind::kDelay:
      os << "xDelay cur_msg " << e.delay / sim::kMillisecond;
      break;
    case FaultKind::kDuplicate:
      os << "xDuplicate " << e.copies;
      break;
    case FaultKind::kCorrupt:
      os << "msg_set_byte " << e.corrupt_offset
         << " [expr {int([dst_uniform 0 256])}]";
      break;
    case FaultKind::kReorder:
      // Never reached: reorder events compile to a multi-line hold-queue
      // block in side_script(), not a single action.
      break;
  }
  return os.str();
}

int reorder_batch(const FaultEvent& e) { return std::max(2, e.batch); }

/// The hold queue backing one reorder event; unique per (type, occurrence)
/// so overlapping windows on the same type stay independent.
std::string reorder_queue(const FaultEvent& e) {
  return "schedq_" + sanitize(e.type) + "_" + std::to_string(e.occurrence);
}

std::string side_script(const std::vector<const FaultEvent*>& events) {
  // Group by message type, preserving first-seen order for determinism.
  std::vector<std::string> order;
  std::map<std::string, std::vector<const FaultEvent*>> by_type;
  for (const FaultEvent* e : events) {
    if (!by_type.contains(e->type)) order.push_back(e->type);
    by_type[e->type].push_back(e);
  }

  std::ostringstream os;
  // Only type-matching events read $t; an all-wildcard side skips the
  // lookup (and stays clean under `pfi_lint --strict`'s unused-var rule).
  const bool needs_type = std::any_of(order.begin(), order.end(),
                                      [](const std::string& t) {
                                        return t != "*";
                                      });
  if (needs_type) os << "set t [msg_type cur_msg]\n";
  for (const auto& type : order) {
    const std::string var = "sched_n_" + sanitize(type);
    const bool any = type == "*";
    if (any) {
      os << "incr " << var << "\n";
    } else {
      os << "if {$t eq \"" << type << "\"} {\n  incr " << var << "\n";
    }
    const std::string in = any ? "" : "  ";
    for (const FaultEvent* e : by_type[type]) {
      if (e->kind == FaultKind::kReorder) {
        // Window [occurrence, occurrence+batch-1]: park each matching
        // message; once the batch is full, flush it in reverse order.
        const std::string q = reorder_queue(*e);
        const int last = e->occurrence + reorder_batch(*e) - 1;
        os << in << "if {$" << var << " >= " << e->occurrence << " && $"
           << var << " <= " << last << "} {\n"
           << in << "  msg_log cur_msg campaign-reorder\n"
           << in << "  xHold " << q << "\n"
           << in << "  if {[xHeldCount " << q << "] >= " << reorder_batch(*e)
           << "} { xReleaseReversed " << q << " }\n"
           << in << "}\n";
        continue;
      }
      os << in << "if {$" << var << " == " << e->occurrence << "} {\n"
         << in << "  msg_log cur_msg campaign-"
         << core::scriptgen::to_string(e->kind) << "\n"
         << in << "  " << action_for(*e) << "\n"
         << in << "}\n";
    }
    if (!any) os << "}\n";
  }
  return os.str();
}

}  // namespace

std::string FaultEvent::summary() const {
  std::ostringstream os;
  os << core::scriptgen::to_string(kind) << " " << type << "#" << occurrence;
  if (kind == FaultKind::kReorder) {
    os << ".." << occurrence + std::max(2, batch) - 1;
  }
  os << (on_send ? "" : " (recv)");
  return os.str();
}

core::failure::Scripts FaultSchedule::compile() const {
  core::failure::Scripts s;
  if (events.empty()) return s;

  std::vector<const FaultEvent*> send_events, recv_events;
  for (const FaultEvent& e : events) {
    (e.on_send ? send_events : recv_events).push_back(&e);
  }

  // One counter per (type) — setup runs in BOTH interpreters, so the send
  // and receive filters each get an independent zeroed copy.
  std::vector<std::string> order;
  std::ostringstream setup;
  for (const FaultEvent& e : events) {
    const std::string var = "sched_n_" + sanitize(e.type);
    bool seen = false;
    for (const auto& v : order) seen = seen || v == var;
    if (!seen) {
      order.push_back(var);
      setup << "set " << var << " 0\n";
    }
  }
  s.setup = setup.str();
  if (!send_events.empty()) s.send = side_script(send_events);
  if (!recv_events.empty()) s.receive = side_script(recv_events);
  return s;
}

std::string FaultSchedule::summary() const {
  std::string out;
  for (const FaultEvent& e : events) {
    if (!out.empty()) out += "; ";
    out += e.summary();
  }
  return out;
}

void FaultSchedule::to_json(json::Writer& w) const {
  w.begin_array();
  for (const FaultEvent& e : events) {
    w.begin_object();
    w.kv("type", e.type);
    w.kv("fault", core::scriptgen::to_string(e.kind));
    w.kv("occurrence", e.occurrence);
    w.kv("side", e.on_send ? "send" : "receive");
    if (e.kind == FaultKind::kDelay) {
      w.kv("delay_ms", e.delay / sim::kMillisecond);
    }
    if (e.kind == FaultKind::kDuplicate) w.kv("copies", e.copies);
    if (e.kind == FaultKind::kCorrupt) {
      w.kv("offset", static_cast<std::uint64_t>(e.corrupt_offset));
    }
    if (e.kind == FaultKind::kReorder) w.kv("batch", std::max(2, e.batch));
    w.end_object();
  }
  w.end_array();
}

FaultSchedule burst(const std::string& type, FaultKind kind,
                    int first_occurrence, int count, bool on_send,
                    sim::Duration delay) {
  FaultSchedule s;
  if (kind == FaultKind::kReorder) {
    // One hold-queue window covering the whole burst.
    FaultEvent e;
    e.type = type;
    e.kind = kind;
    e.occurrence = first_occurrence;
    e.on_send = on_send;
    e.delay = delay;
    e.batch = std::max(2, count);
    s.events.push_back(e);
    return s;
  }
  for (int i = 0; i < count; ++i) {
    FaultEvent e;
    e.type = type;
    e.kind = kind;
    e.occurrence = first_occurrence + i;
    e.on_send = on_send;
    e.delay = delay;
    s.events.push_back(e);
  }
  return s;
}

}  // namespace pfi::campaign
