// Conformance-suite planner: a directory of .pdt timelines x the four
// vendor TcpProfiles becomes one campaign plan. Each cell runs one .pdt
// under one vendor profile with the "conformance" oracle, so
// `pfi_campaign --suite suites/tcp` reproduces the paper's Tables 1-4
// vendor-difference matrix as byte-deterministic records.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "campaign/spec.hpp"

namespace pfi::campaign {

/// The vendor axis of a suite plan, in profiles::all_vendors() order
/// (CLI names understood by the runner).
const std::vector<std::string>& suite_vendors();

/// Plan `dir`'s *.pdt files (sorted by name, file-major: each timeline runs
/// across every vendor before the next timeline starts). Cell ids are
/// "tcp/<vendor>/<timeline>/s<seed>"; duration, scenario and seed come from
/// each .pdt header. Returns nullopt and sets *err if the directory has no
/// .pdt files or any of them fails to parse — a suite is a test corpus, so
/// it fails fast rather than planning error cells.
std::optional<std::vector<RunCell>> plan_suite(const std::string& dir,
                                               std::string* err);

/// The synthesized spec a suite plan runs under (report/journal naming).
CampaignSpec suite_spec(const std::string& dir);

}  // namespace pfi::campaign
