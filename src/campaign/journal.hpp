// Checkpoint/resume journal (append-only JSONL).
//
// A cell's record is a pure function of (protocol, oracle, vendor, compiled
// scripts, seed, topology, budgets) — the ROADMAP's "result caching by
// script hash" observation. The journal exploits that: every completed
// record is appended, flushed, as one line
//
//   {"key":"<16-hex content hash>","record":{...record_json...}}
//
// keyed by cell_key(), a hash over everything the record depends on and
// *nothing* it doesn't (not the cell's index, not the campaign name, not
// --jobs). So after a SIGINT — or after editing one axis of the spec —
// `pfi_campaign --resume` replans, looks each planned cell up by key, and
// executes only the misses; hits splice their stored record into the new
// report byte-identically (modulo the index field, which is rewritten to
// the cell's position in the *current* plan).
//
// Append-only + flush-per-record means a campaign killed at any instant
// leaves a valid journal: the torn final line (if any) is skipped on load.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "campaign/spec.hpp"

namespace pfi::campaign {

/// Content hash (64-bit FNV-1a, 16 hex digits) of everything a cell's
/// record is a function of. Literal-script cells hash the script file's
/// *contents* (editing the .tcl invalidates the cache); schedule cells
/// hash the compiled filter scripts.
std::string cell_key(const RunCell& cell);

/// Load key -> record from a journal file (missing file = empty map; a
/// malformed/torn line is skipped; later lines win on duplicate keys).
std::map<std::string, std::string> load_journal(const std::string& path);

/// Rewrite the leading "index":N of a stored record to the cell's position
/// in the current plan. Records always start {"index":N, (record_json's
/// fixed field order); anything else is returned unchanged.
std::string rewrite_index(const std::string& record, int new_index);

/// Merge several journal files into one key -> record map: within a file
/// later lines win (same as load_journal); across files the first file to
/// define a key wins. Since a record is a pure function of its key, a
/// cross-file collision with *different* bytes means corruption — those are
/// counted into *conflicts (the first-seen record is kept).
std::map<std::string, std::string> merge_journals(
    const std::vector<std::string>& paths, int* conflicts = nullptr);

/// Serialise a journal map back to JSONL, one `{"key":...,"record":...}`
/// line per entry, sorted by key: a byte-deterministic normal form, so two
/// journals holding the same records — however the campaign was split
/// across workers, hosts, or interrupted runs — compare byte-identical.
std::string journal_jsonl(const std::map<std::string, std::string>& entries);

/// Append side. One instance per campaign run; every append is flushed so
/// a kill -9 loses at most the line being written.
class Journal {
 public:
  Journal() = default;
  ~Journal() { close(); }
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Open for append (creates the file). Returns false on I/O failure.
  bool open(const std::string& path);
  void append(const std::string& key, const std::string& record);
  void close();
  [[nodiscard]] bool is_open() const { return f_ != nullptr; }

 private:
  std::FILE* f_ = nullptr;
};

}  // namespace pfi::campaign
