#include "campaign/minimize.hpp"

#include <algorithm>

#include "campaign/json.hpp"

namespace pfi::campaign {

namespace {

using Events = std::vector<FaultEvent>;

/// Split `events` into n contiguous chunks (first chunks get the remainder).
std::vector<Events> chunk(const Events& events, std::size_t n) {
  std::vector<Events> out;
  const std::size_t size = events.size() / n, rem = events.size() % n;
  std::size_t at = 0;
  for (std::size_t i = 0; i < n && at < events.size(); ++i) {
    const std::size_t len = size + (i < rem ? 1 : 0);
    out.emplace_back(events.begin() + static_cast<std::ptrdiff_t>(at),
                     events.begin() + static_cast<std::ptrdiff_t>(at + len));
    at += len;
  }
  return out;
}

Events minus(const Events& all, const Events& remove_chunk,
             std::size_t chunk_start) {
  Events out;
  out.reserve(all.size() - remove_chunk.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i >= chunk_start && i < chunk_start + remove_chunk.size()) continue;
    out.push_back(all[i]);
  }
  return out;
}

}  // namespace

MinimizeResult minimize_schedule(const RunCell& cell,
                                 const MinimizeOptions& opts) {
  MinimizeResult res;
  res.schedule = cell.schedule;
  res.original_events = cell.schedule.size();
  res.minimal_events = cell.schedule.size();

  auto probe = [&](const Events& events) {
    RunCell c = cell;
    c.schedule.events = events;
    // The record is a pure function of the cell, so a cached record's
    // verdict answers the probe without re-executing (ROADMAP: point
    // --minimize's ddmin probes at the journal cache).
    std::string key;
    if (opts.cache != nullptr) {
      key = cell_key(c);
      const auto hit = opts.cache->find(key);
      if (hit != opts.cache->end()) {
        ++res.cache_hits;
        return json::probe_string_field(hit->second, "verdict")
                   .value_or("error") == "fail";
      }
      if (opts.equivalent_key) {
        const std::string alias = opts.equivalent_key(c);
        const auto eq = alias.empty() ? opts.cache->end()
                                      : opts.cache->find(alias);
        if (eq != opts.cache->end()) {
          ++res.cache_hits;
          return json::probe_string_field(eq->second, "verdict")
                     .value_or("error") == "fail";
        }
      }
    }
    ++res.runs;
    const RunResult r = run_cell(c);
    if (opts.cache != nullptr) {
      const std::string record = record_json(r);
      (*opts.cache)[key] = record;
      if (opts.journal != nullptr && opts.journal->is_open()) {
        opts.journal->append(key, record);
      }
    }
    return !r.errored() && !r.pass;  // "interesting" = still fails cleanly
  };

  if (cell.schedule.empty() || !cell.script_file.empty()) return res;
  res.failed_originally = probe(cell.schedule.events);
  if (!res.failed_originally) return res;

  // ddmin (Zeller & Hildebrandt): try subsets, then complements, refining
  // granularity until 1-minimal or out of budget.
  Events events = cell.schedule.events;
  std::size_t n = 2;
  while (events.size() >= 2 && res.runs < opts.max_runs) {
    const std::vector<Events> chunks = chunk(events, n);
    bool reduced = false;

    for (const Events& c : chunks) {
      if (res.runs >= opts.max_runs) break;
      if (c.size() < events.size() && probe(c)) {
        events = c;
        n = 2;
        reduced = true;
        break;
      }
    }
    if (!reduced && n > 2) {
      std::size_t start = 0;
      for (const Events& c : chunks) {
        if (res.runs >= opts.max_runs) break;
        const Events complement = minus(events, c, start);
        start += c.size();
        if (!complement.empty() && complement.size() < events.size() &&
            probe(complement)) {
          events = complement;
          n = std::max<std::size_t>(2, n - 1);
          reduced = true;
          break;
        }
      }
    }
    if (!reduced) {
      if (n >= events.size()) break;  // 1-minimal at finest granularity
      n = std::min(events.size(), n * 2);
    }
  }

  res.schedule.events = events;
  res.minimal_events = events.size();

  // Deterministic re-verification: one more clean run of the minimal
  // schedule must still reproduce the failure.
  RunCell final_cell = cell;
  final_cell.schedule = res.schedule;
  res.verification = run_cell(final_cell);
  res.reproduced = !res.verification.errored() && !res.verification.pass;
  return res;
}

}  // namespace pfi::campaign
