// Parallel campaign executor.
//
// Cells are claimed from an atomic cursor by a pool of worker threads; each
// worker builds and tears down a private testbed per cell (see runner.hpp),
// so there is no shared mutable state between concurrent runs and no locks
// around the simulation itself. Results land in a pre-sized vector slot per
// cell, which makes the returned order — and therefore every per-run JSON
// record — identical whatever the thread count. The determinism test in
// tests/campaign_test.cpp holds this invariant down.
//
// Resilience (this layer, not the runner, owns campaign survival):
//
//   * isolate — each cell runs in a forked child process (sandbox.hpp); a
//     crashing or wedged testbed becomes an error record instead of
//     campaign death. The isolate path is a single-threaded process pool
//     (children are the parallelism), which keeps fork() trivially safe.
//   * retries — errored cells (never oracle-failed ones) are re-run with
//     capped exponential backoff; the final record is byte-identical to a
//     first-try success, and the attempt count travels outside the record.
//   * should_stop — sampled between cells; on true, no new cell is claimed,
//     in-flight cells finish, and unclaimed results come back with
//     index == -1 (RunResult::index >= 0 marks "actually executed").
#pragma once

#include <functional>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"

namespace pfi::campaign {

struct ExecutorOptions {
  /// Worker threads; values < 1 are clamped to 1. 1 = run inline, no pool.
  /// Under `isolate` this is the number of concurrent child processes.
  int jobs = 1;
  /// Run every cell in a forked child process (POSIX).
  bool isolate = false;
  /// Re-run an errored cell up to this many extra times.
  int retries = 0;
  /// Backoff before retry k (1-based): min(retry_backoff_ms << (k-1), 2000).
  int retry_backoff_ms = 100;
  /// Called as each cell finishes (any worker thread, serialised by an
  /// internal mutex). Completion order is nondeterministic — only use this
  /// for progress display, never for result assembly.
  std::function<void(const RunResult&)> on_result;
  /// Called in *slot order* (results[0], results[1], ...) as the maximal
  /// completed prefix grows: deterministic streaming at any `jobs`, the
  /// same contract the fabric coordinator's ordered stream keeps, so live
  /// consumers (report writers, the daemon's progress feed) share one code
  /// path in-process and distributed. On interruption, emission stops at
  /// the first gap; the returned vector still holds everything that ran.
  std::function<void(const RunResult&)> on_result_ordered;
  /// Called (serialised, like on_result) before each retry of an errored
  /// cell — campaign-side logging of attempts.
  std::function<void(const RunResult&, int attempt, int max_attempts)>
      on_retry;
  /// Sampled before claiming each cell; true stops the campaign gracefully.
  std::function<bool()> should_stop;
};

/// Run every cell; returns results in cell order (results[i] is cells[i]).
/// When should_stop fires mid-campaign, skipped cells keep index == -1.
std::vector<RunResult> run_cells(const std::vector<RunCell>& cells,
                                 const ExecutorOptions& opts = {});

/// Aggregate counts over a finished campaign. Skipped cells (index == -1,
/// from a should_stop interruption) are counted in `skipped` only.
struct Summary {
  int total = 0;
  int passed = 0;
  int failed = 0;
  int errored = 0;
  int skipped = 0;
  std::vector<const RunResult*> failures;  // fail + error, cell order
};

Summary summarize(const std::vector<RunResult>& results);

}  // namespace pfi::campaign
