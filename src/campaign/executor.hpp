// Parallel campaign executor.
//
// Cells are claimed from an atomic cursor by a pool of worker threads; each
// worker builds and tears down a private testbed per cell (see runner.hpp),
// so there is no shared mutable state between concurrent runs and no locks
// around the simulation itself. Results land in a pre-sized vector slot per
// cell, which makes the returned order — and therefore every per-run JSON
// record — identical whatever the thread count. The determinism test in
// tests/campaign_test.cpp holds this invariant down.
#pragma once

#include <functional>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"

namespace pfi::campaign {

struct ExecutorOptions {
  /// Worker threads; values < 1 are clamped to 1. 1 = run inline, no pool.
  int jobs = 1;
  /// Called as each cell finishes (any worker thread, serialised by an
  /// internal mutex). Completion order is nondeterministic — only use this
  /// for progress display, never for result assembly.
  std::function<void(const RunResult&)> on_result;
};

/// Run every cell; returns results in cell order (results[i] is cells[i]).
std::vector<RunResult> run_cells(const std::vector<RunCell>& cells,
                                 const ExecutorOptions& opts = {});

/// Aggregate counts over a finished campaign.
struct Summary {
  int total = 0;
  int passed = 0;
  int failed = 0;
  int errored = 0;
  std::vector<const RunResult*> failures;  // fail + error, cell order
};

Summary summarize(const std::vector<RunResult>& results);

}  // namespace pfi::campaign
