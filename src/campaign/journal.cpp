#include "campaign/journal.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "campaign/json.hpp"
#include "pfi/script_file.hpp"

namespace pfi::campaign {

namespace {

struct Fnv1a {
  std::uint64_t h = 1469598103934665603ull;

  void feed(std::string_view s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
    // Field separator: distinguishes ("ab","c") from ("a","bc").
    h ^= 0xFFu;
    h *= 1099511628211ull;
  }
  void feed_u64(std::uint64_t v) { feed(std::to_string(v)); }
  void feed_i64(std::int64_t v) { feed(std::to_string(v)); }
};

}  // namespace

std::string cell_key(const RunCell& cell) {
  Fnv1a fnv;
  fnv.feed("pfi-journal-v1");
  fnv.feed(cell.protocol);
  fnv.feed(cell.oracle);
  fnv.feed(cell.vendor);

  // New identity axes feed only when set, so every pre-existing cell keeps
  // its key (resume journals written before these axes stay valid).
  if (!cell.scenario.empty()) fnv.feed("scenario:" + cell.scenario);
  if (!cell.conform_file.empty()) {
    std::ifstream in(cell.conform_file, std::ios::binary);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      fnv.feed("conform");
      fnv.feed(ss.str());
    } else {
      fnv.feed("unreadable:" + cell.conform_file);
    }
  }

  // Hash what actually executes, not how it was named: literal cells hash
  // the script file's *contents* (editing the .tcl invalidates the cached
  // record), schedule cells hash the compiled filter scripts.
  if (!cell.script_file.empty()) {
    if (auto file = core::load_script_file(cell.script_file)) {
      fnv.feed(file->setup);
      fnv.feed(file->send);
      fnv.feed(file->receive);
    } else {
      // Unreadable now: key on the path so the (error) record still
      // caches, and fixing the file changes the key.
      fnv.feed("unreadable:" + cell.script_file);
    }
  } else {
    const core::failure::Scripts s = cell.schedule.compile();
    fnv.feed(s.setup);
    fnv.feed(s.send);
    fnv.feed(s.receive);
  }

  fnv.feed_u64(cell.seed);
  fnv.feed_i64(cell.nodes);
  fnv.feed_i64(cell.target_node);
  fnv.feed_i64(cell.warmup);
  fnv.feed_i64(cell.duration);
  fnv.feed_i64(cell.jitter);
  fnv.feed(cell.buggy ? "buggy" : "clean");
  fnv.feed_i64(cell.timeout_ms);
  fnv.feed_u64(cell.max_sim_events);

  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv.h));
  return buf;
}

std::map<std::string, std::string> load_journal(const std::string& path) {
  std::map<std::string, std::string> out;
  std::ifstream in(path);
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    // {"key":"<16 hex>","record":{...}}
    const auto key = json::probe_string_field(line, "key");
    if (!key || key->size() != 16) continue;
    const std::string marker = "\"record\":";
    const auto at = line.find(marker);
    if (at == std::string::npos) continue;
    if (line.size() < at + marker.size() + 2 || line.back() != '}') continue;
    // Strip the outer wrapper's closing brace; the rest is the record.
    std::string record =
        line.substr(at + marker.size(),
                    line.size() - (at + marker.size()) - 1);
    if (record.empty() || record.front() != '{' || record.back() != '}') {
      continue;  // torn line (killed mid-append)
    }
    out[*key] = std::move(record);  // later lines win
  }
  return out;
}

std::string rewrite_index(const std::string& record, int new_index) {
  const std::string prefix = "{\"index\":";
  if (record.rfind(prefix, 0) != 0) return record;
  std::size_t end = prefix.size();
  if (end < record.size() && record[end] == '-') ++end;
  while (end < record.size() &&
         record[end] >= '0' && record[end] <= '9') {
    ++end;
  }
  if (end == prefix.size()) return record;
  return prefix + std::to_string(new_index) + record.substr(end);
}

std::map<std::string, std::string> merge_journals(
    const std::vector<std::string>& paths, int* conflicts) {
  std::map<std::string, std::string> out;
  int clashes = 0;
  for (const std::string& path : paths) {
    for (auto& [key, record] : load_journal(path)) {
      const auto it = out.find(key);
      if (it == out.end()) {
        out.emplace(key, std::move(record));
      } else if (it->second != record) {
        ++clashes;  // first-seen record wins
      }
    }
  }
  if (conflicts != nullptr) *conflicts = clashes;
  return out;
}

std::string journal_jsonl(const std::map<std::string, std::string>& entries) {
  std::string out;
  for (const auto& [key, record] : entries) {
    out += "{\"key\":\"";
    out += key;
    out += "\",\"record\":";
    out += record;
    out += "}\n";
  }
  return out;
}

bool Journal::open(const std::string& path) {
  close();
  f_ = std::fopen(path.c_str(), "a");
  return f_ != nullptr;
}

void Journal::append(const std::string& key, const std::string& record) {
  if (f_ == nullptr) return;
  std::fprintf(f_, "{\"key\":\"%s\",\"record\":%s}\n", key.c_str(),
               record.c_str());
  std::fflush(f_);  // a kill -9 loses at most this line
}

void Journal::close() {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
}

}  // namespace pfi::campaign
