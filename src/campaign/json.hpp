// Minimal streaming JSON writer shared by the campaign engine and bench/.
//
// Campaign results must be machine-readable and byte-reproducible: the
// determinism-under-parallelism guarantee is "the per-run record is identical
// whatever --jobs was", which only holds if serialisation itself is
// deterministic. So this writer is deliberately dumb: no maps, no reflection,
// no locale — keys appear exactly in the order the caller emits them, doubles
// are formatted with a fixed printf spec, and the output carries no
// whitespace the caller didn't ask for.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pfi::campaign::json {

/// Escape a string for inclusion inside JSON quotes.
inline std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Extract the (unescaped) value of a top-level string field from a JSON
/// object *this writer produced* — a structural probe for re-reading our
/// own deterministic records (journal resume, summary verdict counting),
/// not a general JSON parser. Returns nullopt when the key is absent.
inline std::optional<std::string> probe_string_field(std::string_view doc,
                                                     std::string_view key) {
  std::string needle = "\"";
  needle.append(key);
  needle += "\":\"";
  const auto at = doc.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  std::string out;
  for (std::size_t i = at + needle.size(); i < doc.size(); ++i) {
    const char c = doc[i];
    if (c == '"') return out;
    if (c == '\\' && i + 1 < doc.size()) {
      const char e = doc[++i];
      switch (e) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u':
          // \u00XX (the writer only emits control codes this way).
          if (i + 4 < doc.size()) {
            const std::string hex(doc.substr(i + 1, 4));
            out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
            i += 4;
          }
          break;
        default: out += e;
      }
      continue;
    }
    out += c;
  }
  return std::nullopt;  // unterminated: not something we wrote
}

/// Streaming writer with comma bookkeeping. Usage:
///
///   Writer w;
///   w.begin_object().key("verdict").value("pass").key("n").value(3)
///    .end_object();
///   std::string doc = w.str();
class Writer {
 public:
  Writer& begin_object() {
    pre_value();
    out_ += '{';
    fresh_.push_back(true);
    return *this;
  }
  Writer& end_object() {
    out_ += '}';
    fresh_.pop_back();
    return *this;
  }
  Writer& begin_array() {
    pre_value();
    out_ += '[';
    fresh_.push_back(true);
    return *this;
  }
  Writer& end_array() {
    out_ += ']';
    fresh_.pop_back();
    return *this;
  }

  Writer& key(std::string_view k) {
    comma();
    out_ += '"';
    out_ += escape(k);
    out_ += "\":";
    pending_value_ = true;
    return *this;
  }

  Writer& value(std::string_view v) {
    pre_value();
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
    return *this;
  }
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& value(const std::string& v) { return value(std::string_view(v)); }
  Writer& value(bool b) {
    pre_value();
    out_ += b ? "true" : "false";
    return *this;
  }
  Writer& value(std::int64_t n) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(n));
    pre_value();
    out_ += buf;
    return *this;
  }
  Writer& value(std::uint64_t n) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(n));
    pre_value();
    out_ += buf;
    return *this;
  }
  Writer& value(int n) { return value(static_cast<std::int64_t>(n)); }
  /// Fixed three-decimal formatting: enough for millisecond-resolution
  /// timings, and stable across platforms/locales.
  Writer& value(double d) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.3f", d);
    pre_value();
    out_ += buf;
    return *this;
  }
  /// Splice pre-serialised JSON verbatim (e.g. a cached per-run record).
  Writer& value_raw(std::string_view json) {
    pre_value();
    out_ += json;
    return *this;
  }

  /// key+value in one call.
  template <typename V>
  Writer& kv(std::string_view k, V&& v) {
    return key(k).value(std::forward<V>(v));
  }

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void comma() {
    if (!fresh_.empty()) {
      if (!fresh_.back()) out_ += ',';
      fresh_.back() = false;
    }
  }
  void pre_value() {
    if (pending_value_) {
      pending_value_ = false;  // key() already placed the comma
    } else {
      comma();
    }
  }

  std::string out_;
  std::vector<bool> fresh_;  // per nesting level: no element emitted yet
  bool pending_value_ = false;
};

}  // namespace pfi::campaign::json
