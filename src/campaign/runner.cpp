#include "campaign/runner.hpp"

#include <cstdio>
#include <memory>
#include <optional>

#include <algorithm>

#include "campaign/watchdog.hpp"
#include "conformance/conformance.hpp"
#include "experiments/gmp_testbed.hpp"
#include "experiments/oracles.hpp"
#include "experiments/tcp_testbed.hpp"
#include "experiments/tpc_testbed.hpp"
#include "obs/coverage.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "pfi/driver.hpp"
#include "pfi/script_file.hpp"
#include "spec/tcp_spec.hpp"
#include "tcp/profile.hpp"

namespace pfi::campaign {

namespace {

using experiments::oracles::Verdict;

/// An empty oracle means "protocol default" (the planner always fills one
/// in, but run_cell is also a public API); anything else must be a name the
/// protocol's dispatch below actually understands — a typo must become an
/// error record, not a silent fallback to the default oracle.
bool known_oracle(const std::string& protocol, const std::string& oracle) {
  if (oracle.empty()) return true;
  if (protocol == "gmp") {
    return oracle == "agreement" || oracle == "liveness" || oracle == "quiet";
  }
  if (protocol == "tcp") {
    return oracle == "spec" || oracle == "alive" || oracle == "conformance";
  }
  if (protocol == "tpc") return oracle == "atomic";
  return false;
}

/// Driver workload shapes (conformance::known_scenarios) are a tcp-only
/// axis; the empty string is the legacy 512 B / 500 ms shape everywhere.
bool known_scenario(const std::string& protocol, const std::string& scenario) {
  if (scenario.empty()) return true;
  if (protocol != "tcp") return false;
  const auto& known = conformance::known_scenarios();
  return std::find(known.begin(), known.end(), scenario) != known.end();
}

/// Advance the simulation to `deadline`. With a watchdog, advance in slices
/// so wall-clock and sim-event budgets are sampled even inside a single
/// long quiescent stretch; once expired, stop driving the simulation.
void advance(sim::Scheduler& sched, sim::TimePoint deadline, Watchdog* wd) {
  if (wd == nullptr) {
    sched.run_until(deadline);
    return;
  }
  constexpr std::size_t kSlice = 20'000;
  while (!wd->check()) {
    const std::size_t fired = sched.run_until(deadline, kSlice);
    wd->add_sim_events(fired);
    if (fired < kSlice) return;  // every event <= deadline has fired
  }
}

/// Point the PFI layer's two interpreters at the cell's watchdog, so a
/// filter script that never returns (spin loop) is cut short too.
void arm_interpreters(core::PfiLayer& pfi, Watchdog* wd) {
  if (wd == nullptr) return;
  pfi.send_interp().set_watchdog(wd->interp_hook());
  pfi.receive_interp().set_watchdog(wd->interp_hook());
}

/// Resolve the cell's fault load to installable scripts. Literal files win.
bool resolve_scripts(const RunCell& cell, core::failure::Scripts* out,
                     std::string* err) {
  if (!cell.script_file.empty()) {
    auto file = core::load_script_file(cell.script_file);
    if (!file) {
      *err = "cannot read script file " + cell.script_file;
      return false;
    }
    out->setup = file->setup;
    out->send = file->send;
    out->receive = file->receive;
    return true;
  }
  *out = cell.schedule.compile();
  return true;
}

void install(core::PfiLayer& pfi, const core::failure::Scripts& s) {
  if (!s.setup.empty()) pfi.run_setup(s.setup);
  pfi.set_send_script(s.send);
  pfi.set_receive_script(s.receive);
}

void collect_pfi(const core::PfiLayer& pfi, RunResult* r) {
  const auto& st = pfi.stats();
  r->faults_injected = st.dropped + st.delayed + st.duplicated + st.corrupted;
  r->messages_seen = st.sends_intercepted + st.recvs_intercepted;
  r->script_errors = st.script_errors;
}

/// The zero-omitting fault-action table of the target PFI layer — feeds both
/// the coverage fingerprint and the pfi.action.* metric exports.
std::vector<std::pair<std::string, std::uint64_t>> pfi_actions(
    const core::PfiStats& st) {
  return {{"dropped", st.dropped},       {"delayed", st.delayed},
          {"duplicated", st.duplicated}, {"corrupted", st.corrupted},
          {"injected", st.injected},     {"held", st.held},
          {"released", st.released}};
}

void export_interp(obs::Registry* reg, const std::string& prefix,
                   const script::Interp::Stats& st) {
  reg->set_counter(prefix + ".evals", st.evals);
  reg->set_counter(prefix + ".commands", st.commands);
  reg->set_counter(prefix + ".loop_ticks", st.loop_ticks);
  reg->set_counter(prefix + ".watchdog_probes", st.watchdog_probes);
}

/// Collect-time export + fingerprint: fold the testbed's intrinsic stats
/// structs into the cell's registry, snapshot it, compute the coverage
/// fingerprint, and (when asked) render the timeline fragment. Everything
/// here is a pure function of the simulation, so the result is byte-stable
/// across --jobs and --isolate.
void finish_observability(const RunCell& cell, obs::Registry* reg,
                          const sim::Scheduler& sched,
                          const net::Network& network,
                          const trace::TraceLog& trace, core::PfiLayer& pfi,
                          RunResult* r) {
  const sim::SchedulerStats& ss = sched.stats();
  reg->set_counter("sim.events_dispatched", ss.events_dispatched);
  reg->set_counter("sim.timers_scheduled", ss.timers_scheduled);
  reg->set_counter("sim.timers_cancelled", ss.timers_cancelled);
  reg->set_max_gauge("sim.queue_high_water", ss.queue_high_water);

  const net::NetworkStats& ns = network.stats();
  reg->set_counter("net.frames_sent", ns.frames_sent);
  reg->set_counter("net.frames_delivered", ns.frames_delivered);
  reg->set_counter("net.frames_lost", ns.frames_lost);
  reg->set_counter("net.frames_blackholed", ns.frames_blackholed);

  const core::PfiStats& ps = pfi.stats();
  reg->set_counter("pfi.sends_intercepted", ps.sends_intercepted);
  reg->set_counter("pfi.recvs_intercepted", ps.recvs_intercepted);
  reg->set_counter("pfi.script_errors", ps.script_errors);
  for (const auto& [name, value] : pfi_actions(ps)) {
    reg->set_counter("pfi.action." + name, value);
  }
  export_interp(reg, "script.send", pfi.send_interp().stats());
  export_interp(reg, "script.recv", pfi.receive_interp().stats());

  reg->set_counter("trace.records", trace.size());
  reg->set_counter("trace.dropped", trace.dropped());

  r->coverage = obs::compute_coverage(trace, *reg, pfi_actions(ps));
  r->metrics = reg->snapshot();
  if (cell.capture_timeline) {
    r->timeline =
        obs::timeline_events(trace, cell.id, cell.index, cell.duration);
  }
}

tcp::TcpProfile vendor_profile(const std::string& name) {
  if (name == "solaris") return tcp::profiles::solaris_2_3();
  if (name == "aix") return tcp::profiles::aix_3_2_3();
  if (name == "next") return tcp::profiles::next_mach();
  if (name == "reference") return tcp::profiles::xkernel_reference();
  return tcp::profiles::sunos_4_1_3();
}

void run_gmp(const RunCell& cell, const core::failure::Scripts& scripts,
             Watchdog* wd, obs::Registry* reg, RunResult* r) {
  std::vector<net::NodeId> ids;
  for (int i = 1; i <= cell.nodes; ++i) {
    ids.push_back(static_cast<net::NodeId>(i));
  }
  experiments::GmpTestbed tb{
      ids, cell.buggy ? gmp::GmpBugs::all() : gmp::GmpBugs::none(),
      cell.seed * 1000};
  tb.network.reseed(cell.seed);
  tb.network.set_metrics(reg);
  tb.network.default_link().jitter = cell.jitter;
  core::PfiLayer& target = tb.pfi(static_cast<net::NodeId>(cell.target_node));
  target.set_metrics(reg);
  arm_interpreters(target, wd);

  // Stagger daemon starts 1 s apart: a simultaneous cold start inherently
  // raises one transient suspicion during the group merge, which would make
  // the "quiet" oracle fail even with zero faults. Sequential joins give a
  // disruption-free baseline, so a quiet-oracle failure is always the
  // fault's doing. Scripts install at `warmup` (before the target daemon
  // starts when warmup is 0, so formation traffic is already filtered).
  constexpr sim::Duration kStagger = sim::sec(1);
  bool installed = false;
  auto install_at_warmup = [&] {
    advance(tb.sched, cell.warmup, wd);
    install(tb.pfi(static_cast<net::NodeId>(cell.target_node)), scripts);
    installed = true;
  };
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const sim::Duration at = static_cast<sim::Duration>(i) * kStagger;
    if (!installed && cell.warmup <= at) install_at_warmup();
    advance(tb.sched, at, wd);
    tb.start(ids[i]);
  }
  if (!installed) install_at_warmup();
  advance(tb.sched, cell.duration, wd);

  Verdict v;
  if (cell.oracle == "liveness") {
    v = experiments::oracles::gmp_liveness(tb);
  } else if (cell.oracle == "quiet") {
    v = experiments::oracles::gmp_quiet(tb);
  } else {
    v = experiments::oracles::gmp_agreement(tb);
  }
  r->pass = v.pass;
  r->reason = v.reason;
  collect_pfi(target, r);
  r->trace_records = tb.trace.records().size();

  // Protocol-level exports: per-daemon group-membership activity.
  for (net::NodeId id : ids) {
    const gmp::GmdStats& gs = tb.gmd(id).stats();
    const std::string p = "gmp.gmd-" + std::to_string(id) + ".";
    reg->set_counter(p + "heartbeats_sent", gs.heartbeats_sent);
    reg->set_counter(p + "views_committed", gs.views_committed);
    reg->set_counter(p + "suspects_raised", gs.suspects_raised);
    reg->set_counter(p + "transition_aborts", gs.transition_aborts);
  }
  finish_observability(cell, reg, tb.sched, tb.network, tb.trace, target, r);
}

void run_tcp(const RunCell& cell, const std::string& scenario,
             const conformance::Program* prog,
             const core::failure::Scripts& scripts, Watchdog* wd,
             obs::Registry* reg, RunResult* r) {
  experiments::TcpTestbed tb{vendor_profile(cell.vendor)};
  tb.network.reseed(cell.seed);
  tb.network.set_metrics(reg);
  tb.network.default_link().jitter = cell.jitter;
  tb.pfi->set_metrics(reg);
  auto checker = std::make_shared<spec::TcpSpecChecker>(tb.sched);
  tb.vendor_stack.insert_below(
      *tb.vendor_tcp, std::make_unique<spec::SpecObserverLayer>(checker));
  arm_interpreters(*tb.pfi, wd);
  install(*tb.pfi, scripts);

  tcp::TcpConnection* conn = tb.connect();
  core::TcpDriver driver{tb.sched, *conn};
  if (scenario == "bulk") {
    // Sustained one-way transfer, 10x the legacy rate.
    driver.start(sim::msec(100), 1024, 0);
  } else if (scenario == "echo") {
    // Interactive request/response: the x-Kernel side answers every chunk,
    // so tcp-data flows in BOTH filter directions.
    driver.on_chunk = [&tb](std::size_t) {
      if (tb.accepted() != nullptr) {
        tb.accepted()->send(std::string(128, 'e'));
      }
    };
    driver.start(sim::msec(500), 128, 0);
  } else if (scenario == "zero-window") {
    // The paper's Table 4 shape: let the handshake finish, stop draining
    // the x-Kernel receive buffer, then pour 10 KiB into a 4 KiB window —
    // the vendor stack must probe the closed window (persist timer).
    advance(tb.sched, std::min<sim::Duration>(sim::msec(100), cell.duration),
            wd);
    if (tb.accepted() != nullptr) tb.accepted()->set_auto_drain(false);
    driver.start(sim::msec(100), 512, 20);
  } else if (scenario == "keepalive") {
    // The paper's Table 3 shape: a short burst, then idle with keep-alive
    // armed — the vendor must probe after its keepalive_idle elapses.
    driver.start(sim::msec(100), 128, 3);
    tb.sched.schedule(sim::sec(1), [conn] { conn->set_keepalive(true); });
  } else {
    driver.start(sim::msec(500), 512, 0);
  }
  advance(tb.sched, cell.duration, wd);

  Verdict v;
  if (cell.oracle == "alive") {
    v = experiments::oracles::tcp_alive(*conn);
  } else if (cell.oracle == "conformance") {
    const conformance::Outcome oc =
        conformance::evaluate(*prog, tb.trace, cell.duration);
    v.pass = oc.pass;
    v.reason = oc.first_divergence;
    r->steps.reserve(oc.steps.size());
    for (const conformance::StepResult& s : oc.steps) {
      r->steps.push_back(conformance::step_line(s));
    }
  } else {
    v = experiments::oracles::tcp_spec(*checker);
  }
  r->pass = v.pass;
  r->reason = v.reason;
  if (cell.oracle.empty() || cell.oracle == "spec") {
    // Satellite of ROADMAP "TCP campaign depth": the spec checker's full
    // violation text travels with the record, not just a pass/fail bit.
    for (const spec::Violation& viol : checker->violations()) {
      if (r->violations.size() >= RunResult::kMaxViolations) {
        r->violations.push_back(
            "+" +
            std::to_string(checker->violations().size() -
                           RunResult::kMaxViolations) +
            " more");
        break;
      }
      char at[32];
      std::snprintf(at, sizeof at, "%.3f", sim::to_seconds(viol.at));
      r->violations.push_back(viol.rule + " @" + at + "s: " + viol.detail);
    }
  }
  collect_pfi(*tb.pfi, r);
  r->trace_records = tb.trace.records().size();

  // Protocol-level exports: both endpoints' TCP machinery, prefixed by side.
  const auto export_tcp = [&](const std::string& side,
                              const tcp::TcpStats& ts) {
    reg->set_counter("tcp." + side + ".segments_sent", ts.segments_sent);
    reg->set_counter("tcp." + side + ".segments_received",
                     ts.segments_received);
    reg->set_counter("tcp." + side + ".data_retransmits", ts.data_retransmits);
    reg->set_counter("tcp." + side + ".fast_retransmits", ts.fast_retransmits);
    reg->set_counter("tcp." + side + ".keepalive_probes",
                     ts.keepalive_probes_sent);
    reg->set_counter("tcp." + side + ".persist_probes",
                     ts.persist_probes_sent);
    reg->set_counter("tcp." + side + ".rsts_sent", ts.rsts_sent);
  };
  export_tcp("vendor", conn->stats());
  if (tb.accepted() != nullptr) export_tcp("xk", tb.accepted()->stats());
  finish_observability(cell, reg, tb.sched, tb.network, tb.trace, *tb.pfi, r);
}

void run_tpc(const RunCell& cell, const core::failure::Scripts& scripts,
             Watchdog* wd, obs::Registry* reg, RunResult* r) {
  std::vector<net::NodeId> ids;
  for (int i = 1; i <= cell.nodes; ++i) {
    ids.push_back(static_cast<net::NodeId>(i));
  }
  experiments::TpcTestbed tb{ids, cell.seed * 1000};
  tb.network.reseed(cell.seed);
  tb.network.set_metrics(reg);
  tb.network.default_link().jitter = cell.jitter;
  core::PfiLayer& target = tb.pfi(static_cast<net::NodeId>(cell.target_node));
  target.set_metrics(reg);
  arm_interpreters(target, wd);
  install(target, scripts);

  // Three transactions spread across the run, all coordinated by the lowest
  // node with everyone participating — the blocking window lives between
  // PREPARED and the decision, which the faulted node's filters can stretch.
  const std::vector<std::uint32_t> txids{1, 2, 3};
  advance(tb.sched, cell.warmup, wd);
  sim::Duration slice = (cell.duration - cell.warmup) /
                        static_cast<sim::Duration>(txids.size());
  if (slice <= 0) slice = sim::sec(1);
  for (std::size_t k = 0; k < txids.size(); ++k) {
    tb.tpc(ids.front()).begin(txids[k], ids);
    advance(tb.sched,
            cell.warmup + static_cast<sim::Duration>(k + 1) * slice, wd);
  }
  advance(tb.sched, cell.duration, wd);

  const Verdict v = experiments::oracles::tpc_atomic(tb, txids);
  r->pass = v.pass;
  r->reason = v.reason;
  collect_pfi(target, r);
  r->trace_records = tb.trace.records().size();
  finish_observability(cell, reg, tb.sched, tb.network, tb.trace, target, r);
}

}  // namespace

RunResult run_cell(const RunCell& cell) {
  RunResult r;
  r.index = cell.index;
  r.id = cell.id;
  r.oracle = cell.oracle;
  r.seed = cell.seed;
  r.sim_seconds = sim::to_seconds(cell.duration);

  if (!known_oracle(cell.protocol, cell.oracle)) {
    r.error = "unknown oracle '" + cell.oracle + "' for protocol " +
              cell.protocol;
    return r;
  }

  // Conformance cells: the .pdt timeline is both the fault load (compiled
  // windows) and, under the "conformance" oracle, the expectation to check.
  std::optional<conformance::Program> prog;
  core::failure::Scripts scripts;
  if (!cell.conform_file.empty()) {
    if (cell.protocol != "tcp") {
      r.error = "conformance timelines require protocol tcp";
      return r;
    }
    std::vector<lint::Diagnostic> diags;
    prog = conformance::load_file(cell.conform_file, &diags);
    if (!prog) {
      lint::sort_diagnostics(&diags);
      r.error = "conformance: " + cell.conform_file;
      if (!diags.empty()) {
        r.error += " [" + diags[0].rule + "] line " +
                   std::to_string(diags[0].line) + ": " + diags[0].message;
      }
      return r;
    }
    scripts = conformance::compile(*prog);
  } else if (cell.oracle == "conformance") {
    r.error = "conformance oracle requires a .pdt timeline (conform_file)";
    return r;
  } else if (!resolve_scripts(cell, &scripts, &r.error)) {
    return r;
  }

  const std::string scenario = !cell.scenario.empty() ? cell.scenario
                               : prog ? prog->scenario
                                      : std::string{};
  if (!known_scenario(cell.protocol, scenario)) {
    r.error =
        "unknown scenario '" + scenario + "' for protocol " + cell.protocol;
    return r;
  }

  std::optional<Watchdog> wd;
  if (cell.timeout_ms > 0 || cell.max_sim_events > 0) {
    wd.emplace(cell.timeout_ms, cell.max_sim_events);
  }
  Watchdog* wdp = wd ? &*wd : nullptr;

  // One private registry per cell: testbed components count into it live,
  // finish_observability folds intrinsic stats in and snapshots it.
  obs::Registry reg;

  try {
    if (cell.protocol == "gmp") {
      run_gmp(cell, scripts, wdp, &reg, &r);
    } else if (cell.protocol == "tcp") {
      run_tcp(cell, scenario, prog ? &*prog : nullptr, scripts, wdp, &reg,
              &r);
    } else if (cell.protocol == "tpc") {
      run_tpc(cell, scripts, wdp, &reg, &r);
    } else {
      r.error = "unknown protocol " + cell.protocol;
    }
  } catch (const std::exception& e) {
    r.error = std::string("exception: ") + e.what();
    r.pass = false;
  }

  if (wdp != nullptr && wdp->expired()) {
    // Deterministic timeout record: how far the run got before a wall-clock
    // watchdog fired varies run to run, so every volatile stat is dropped —
    // the record is a pure function of the cell and its budgets again.
    RunResult t;
    t.index = r.index;
    t.id = r.id;
    t.oracle = r.oracle;
    t.seed = r.seed;
    t.sim_seconds = r.sim_seconds;
    t.error = wdp->reason();
    return t;
  }
  return r;
}

std::string record_json(const RunResult& r) {
  json::Writer w;
  w.begin_object();
  w.kv("index", r.index);
  w.kv("id", r.id);
  w.kv("verdict", r.errored() ? "error" : (r.pass ? "pass" : "fail"));
  w.kv("oracle", r.oracle);
  if (!r.reason.empty()) w.kv("reason", r.reason);
  if (!r.violations.empty()) {
    w.key("violations").begin_array();
    for (const std::string& v : r.violations) w.value(v);
    w.end_array();
  }
  if (!r.steps.empty()) {
    w.key("steps").begin_array();
    for (const std::string& s : r.steps) w.value(s);
    w.end_array();
  }
  if (!r.error.empty()) w.kv("error", r.error);
  w.kv("seed", r.seed);
  w.kv("faults_injected", r.faults_injected);
  w.kv("messages_seen", r.messages_seen);
  w.kv("script_errors", r.script_errors);
  w.kv("trace_records", r.trace_records);
  if (!r.coverage.empty()) {
    w.key("coverage");
    r.coverage.to_json(w);
  }
  w.kv("sim_seconds", r.sim_seconds);
  w.end_object();
  return w.str();
}

}  // namespace pfi::campaign
