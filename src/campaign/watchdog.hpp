// Per-cell execution budgets.
//
// The paper's tool exists to provoke failures — which means campaign cells
// routinely run scripts and protocol states that were *designed* to
// misbehave. A runaway filter script (`while {1} {...}`) or a protocol
// ping-ponging messages at zero delay must not hang a 10k-cell campaign.
// The Watchdog gives one run_cell() invocation two budgets:
//
//   * a sim-event budget  — total scheduler events fired (deterministic:
//     the same cell always trips at the same event);
//   * a wall-clock budget — sampled from std::chrono::steady_clock, for
//     hangs that never return to the scheduler at all.
//
// Expiry is *cooperative*: the runner slices its scheduler advancement and
// checks between slices, and the script interpreters sample the same
// watchdog from their loop guards (Interp::set_watchdog). When a budget
// trips, the cell is cut short and its record becomes a `timeout` error
// with a deterministic reason string (the *configured* budget, never the
// measured overrun, so records stay byte-stable across runs and --jobs).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

namespace pfi::campaign {

class Watchdog {
 public:
  /// Budgets of 0 disable the corresponding check.
  Watchdog(int timeout_ms, std::uint64_t max_sim_events)
      : timeout_ms_(timeout_ms),
        max_sim_events_(max_sim_events),
        start_(std::chrono::steady_clock::now()) {}

  /// Account scheduler events fired since the last call; trips the
  /// sim-event budget.
  void add_sim_events(std::size_t n);

  /// Sample both budgets. Returns true when expired (sticky).
  bool check();

  [[nodiscard]] bool expired() const { return !reason_.empty(); }
  /// Deterministic error text, e.g. "timeout: wall-clock budget 500 ms
  /// exceeded". Empty while healthy.
  [[nodiscard]] const std::string& reason() const { return reason_; }
  [[nodiscard]] std::uint64_t sim_events() const { return sim_events_; }

  /// Adapter for script::Interp::set_watchdog. The returned callable
  /// samples this watchdog; it must not outlive it.
  [[nodiscard]] std::function<bool()> interp_hook() {
    return [this] { return check(); };
  }

  /// The deterministic reason strings, shared with the sandbox so a cell
  /// killed by the parent process reports the identical record a
  /// cooperative in-process timeout would have produced.
  static std::string wall_reason(int timeout_ms);
  static std::string events_reason(std::uint64_t max_sim_events);

 private:
  int timeout_ms_ = 0;
  std::uint64_t max_sim_events_ = 0;
  std::uint64_t sim_events_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::string reason_;
};

}  // namespace pfi::campaign
