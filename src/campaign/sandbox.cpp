#include "campaign/sandbox.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/watchdog.hpp"

namespace pfi::campaign {

namespace {

void put(std::string* out, const char* key, const std::string& v) {
  *out += key;
  *out += ' ';
  *out += std::to_string(v.size());
  *out += '\n';
  *out += v;
  *out += '\n';
}

void put_u64(std::string* out, const char* key, std::uint64_t v) {
  put(out, key, std::to_string(v));
}

/// Doubles travel as C99 hex floats: exact round-trip, no locale, no
/// precision policy to keep in sync with record_json.
void put_double(std::string* out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  put(out, key, buf);
}

/// Cursor over `key len\nbytes\n` entries.
struct WireReader {
  const std::string& bytes;
  std::size_t pos = 0;

  bool next(std::string* key, std::string* value) {
    if (pos >= bytes.size()) return false;
    const std::size_t sp = bytes.find(' ', pos);
    if (sp == std::string::npos) return false;
    *key = bytes.substr(pos, sp - pos);
    const std::size_t nl = bytes.find('\n', sp + 1);
    if (nl == std::string::npos) return false;
    char* end = nullptr;
    const unsigned long long len =
        std::strtoull(bytes.c_str() + sp + 1, &end, 10);
    if (end != bytes.c_str() + nl) return false;
    if (nl + 1 + len + 1 > bytes.size()) return false;
    *value = bytes.substr(nl + 1, len);
    if (bytes[nl + 1 + len] != '\n') return false;
    pos = nl + 1 + len + 1;
    return true;
  }
};

std::string signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    case SIGKILL: return "SIGKILL";
    case SIGTERM: return "SIGTERM";
    default: return "signal " + std::to_string(sig);
  }
}

/// Base of every synthesised (timeout / crash) record: identity fields
/// only, volatile stats zeroed, so the bytes are deterministic.
RunResult skeleton(const RunCell& cell) {
  RunResult r;
  r.index = cell.index;
  r.id = cell.id;
  r.oracle = cell.oracle;
  r.seed = cell.seed;
  r.sim_seconds = sim::to_seconds(cell.duration);
  return r;
}

}  // namespace

std::string wire_encode(const RunResult& r) {
  std::string out;
  put(&out, "index", std::to_string(r.index));
  put(&out, "id", r.id);
  put(&out, "pass", r.pass ? "1" : "0");
  put(&out, "reason", r.reason);
  put(&out, "oracle", r.oracle);
  put_u64(&out, "seed", r.seed);
  put_u64(&out, "faults", r.faults_injected);
  put_u64(&out, "msgs", r.messages_seen);
  put_u64(&out, "serr", r.script_errors);
  put_u64(&out, "trace", r.trace_records);
  put_double(&out, "sim", r.sim_seconds);
  put(&out, "error", r.error);
  put_u64(&out, "nviol", r.violations.size());
  for (const std::string& v : r.violations) put(&out, "viol", v);
  for (const std::string& s : r.steps) put(&out, "step", s);
  // Coverage fingerprint: digest + the three sets. Counted pairs travel as
  // "<count> <name>" so names may contain spaces.
  if (!r.coverage.empty()) {
    put(&out, "cvd", r.coverage.digest);
    for (const auto& [type, n] : r.coverage.msg_types) {
      put(&out, "cvt", std::to_string(n) + " " + type);
    }
    for (const auto& [action, n] : r.coverage.actions) {
      put(&out, "cva", std::to_string(n) + " " + action);
    }
    for (const std::string& t : r.coverage.transitions) put(&out, "cvx", t);
  }
  // Metric snapshot: "<kind> <value> <name>".
  for (const obs::MetricSample& m : r.metrics) {
    put(&out, "met",
        std::string(1, m.kind) + " " + std::to_string(m.value) + " " + m.name);
  }
  if (!r.timeline.empty()) put(&out, "tl", r.timeline);
  put(&out, "end", "");
  return out;
}

bool wire_decode(const std::string& bytes, RunResult* out) {
  WireReader rd{bytes};
  RunResult r;
  std::string key, value;
  bool complete = false;
  while (rd.next(&key, &value)) {
    if (key == "index") {
      r.index = std::atoi(value.c_str());
    } else if (key == "id") {
      r.id = value;
    } else if (key == "pass") {
      r.pass = value == "1";
    } else if (key == "reason") {
      r.reason = value;
    } else if (key == "oracle") {
      r.oracle = value;
    } else if (key == "seed") {
      r.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "faults") {
      r.faults_injected = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "msgs") {
      r.messages_seen = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "serr") {
      r.script_errors = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "trace") {
      r.trace_records = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "sim") {
      r.sim_seconds = std::strtod(value.c_str(), nullptr);
    } else if (key == "error") {
      r.error = value;
    } else if (key == "viol") {
      r.violations.push_back(value);
    } else if (key == "step") {
      r.steps.push_back(value);
    } else if (key == "cvd") {
      r.coverage.digest = value;
    } else if (key == "cvt" || key == "cva") {
      const std::size_t sp = value.find(' ');
      if (sp != std::string::npos) {
        const std::uint64_t n = std::strtoull(value.c_str(), nullptr, 10);
        auto& dst = key == "cvt" ? r.coverage.msg_types : r.coverage.actions;
        dst.emplace_back(value.substr(sp + 1), n);
      }
    } else if (key == "cvx") {
      r.coverage.transitions.push_back(value);
    } else if (key == "met") {
      // "<kind> <value> <name>"
      const std::size_t sp1 = value.find(' ');
      const std::size_t sp2 =
          sp1 == std::string::npos ? sp1 : value.find(' ', sp1 + 1);
      if (sp1 == 1 && sp2 != std::string::npos) {
        obs::MetricSample m;
        m.kind = value[0];
        m.value = std::strtoull(value.c_str() + sp1 + 1, nullptr, 10);
        m.name = value.substr(sp2 + 1);
        r.metrics.push_back(std::move(m));
      }
    } else if (key == "tl") {
      r.timeline = value;
    } else if (key == "end") {
      complete = true;
    }
    // Unknown keys (incl. "nviol") are skipped: forward compatibility.
  }
  if (!complete) return false;
  *out = std::move(r);
  return true;
}

bool sandbox_spawn(const RunCell& cell, SandboxChild* child,
                   std::string* err) {
  int fds[2];
  if (pipe(fds) != 0) {
    *err = std::string("sandbox: pipe failed: ") + std::strerror(errno);
    return false;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    *err = std::string("sandbox: fork failed: ") + std::strerror(errno);
    return false;
  }
  if (pid == 0) {
    // Child: run the cell, stream the result, die without running parent
    // teardown (atexit, stream flushes) — the parent owns those.
    close(fds[0]);
    const RunResult r = run_cell(cell);
    const std::string wire = wire_encode(r);
    std::size_t off = 0;
    while (off < wire.size()) {
      const ssize_t n = write(fds[1], wire.data() + off, wire.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        _exit(3);
      }
      off += static_cast<std::size_t>(n);
    }
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  child->pid = pid;
  child->fd = fds[0];
  return true;
}

RunResult sandbox_finish(const RunCell& cell, int wait_status,
                         const std::string& bytes, bool killed_on_timeout) {
  if (killed_on_timeout) {
    RunResult r = skeleton(cell);
    // Identical text to the in-process watchdog: whether the child's
    // cooperative watchdog reported the overrun or the parent had to
    // SIGKILL it, the record bytes agree.
    r.error = Watchdog::wall_reason(cell.timeout_ms);
    return r;
  }
  if (WIFSIGNALED(wait_status)) {
    RunResult r = skeleton(cell);
    const int sig = WTERMSIG(wait_status);
    r.error = "signal " + signal_name(sig) + " (" + std::to_string(sig) + ")";
    return r;
  }
  if (WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0) {
    RunResult r;
    if (wire_decode(bytes, &r)) return r;
    RunResult bad = skeleton(cell);
    bad.error = "sandbox: child produced an unreadable result";
    return bad;
  }
  RunResult r = skeleton(cell);
  r.error = "sandbox: child exited with status " +
            std::to_string(WIFEXITED(wait_status) ? WEXITSTATUS(wait_status)
                                                  : wait_status);
  return r;
}

RunResult run_cell_sandboxed(const RunCell& cell) {
  SandboxChild child;
  std::string err;
  if (!sandbox_spawn(cell, &child, &err)) {
    RunResult r = skeleton(cell);
    r.error = err;
    return r;
  }

  // Grace past the cell's own budget: the child's cooperative watchdog gets
  // first claim on reporting the timeout; SIGKILL is for wedged children.
  constexpr int kGraceMs = 2000;
  const bool has_deadline = cell.timeout_ms > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(cell.timeout_ms + kGraceMs);

  std::string bytes;
  bool killed = false;
  char buf[4096];
  for (;;) {
    int wait_ms = -1;
    if (has_deadline && !killed) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      wait_ms = left > 0 ? static_cast<int>(left) : 0;
    }
    struct pollfd pfd{child.fd, POLLIN, 0};
    const int pr = poll(&pfd, 1, wait_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) {  // deadline: the child is wedged
      kill(child.pid, SIGKILL);
      killed = true;
      continue;  // drain until EOF so waitpid can't block forever
    }
    const ssize_t n = read(child.fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF: child exited (or died)
    bytes.append(buf, static_cast<std::size_t>(n));
  }
  close(child.fd);

  int status = 0;
  while (waitpid(child.pid, &status, 0) < 0 && errno == EINTR) {
  }
  return sandbox_finish(cell, status, bytes, killed);
}

}  // namespace pfi::campaign
