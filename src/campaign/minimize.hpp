// Failing-schedule minimisation (delta debugging).
//
// When a cell fails its oracle, the interesting artefact is rarely the whole
// fault schedule — a storm of twelve injected faults usually reproduces from
// one or two of them. Because schedules are structured event lists (not
// opaque Tcl), we can run Zeller's ddmin over the events: re-execute the
// cell with subsets of the schedule, keep any subset that still fails, and
// converge on a 1-minimal failing schedule. Every probe is a fresh
// deterministic simulation, so "still fails" is exact, and the result is
// re-verified with one final clean run.
//
// Only schedule-mode cells are minimisable; literal .tcl cells have no event
// structure to cut.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>

#include "campaign/journal.hpp"
#include "campaign/runner.hpp"
#include "campaign/schedule.hpp"
#include "campaign/spec.hpp"

namespace pfi::campaign {

struct MinimizeOptions {
  /// Probe budget: maximum cell re-executions before giving up and
  /// returning the best (smallest still-failing) schedule found so far.
  /// Cache-answered probes don't count against it.
  int max_runs = 512;
  /// Optional content-hash record cache (cell_key -> record_json, the
  /// journal's in-memory form). Probes whose key is present answer from
  /// the cached record's verdict instead of re-executing — ddmin revisits
  /// many subsets, and across resumed campaigns the same subsets repeat —
  /// and fresh probe records are inserted so later probes (and later
  /// minimisations) hit. The final re-verification always runs for real.
  std::map<std::string, std::string>* cache = nullptr;
  /// Optional journal to append fresh probe records to (persists the cache
  /// across campaign runs). Ignored when null.
  Journal* journal = nullptr;
  /// Optional equivalence resolver, consulted on a cache miss: maps the
  /// probe cell to the cache key of a behaviourally equivalent recorded
  /// cell ("" = no equivalent known). A resolved record answers the probe
  /// as a cache hit. pfi_search plugs lint::canonical_key's class
  /// representatives in here so ddmin probes ride the same equivalence
  /// pruning as the search loop. Ignored when cache is null.
  std::function<std::string(const RunCell&)> equivalent_key;
};

struct MinimizeResult {
  FaultSchedule schedule;  // smallest failing schedule found
  std::size_t original_events = 0;
  std::size_t minimal_events = 0;
  int runs = 0;             // probe simulations executed
  int cache_hits = 0;       // probes answered from the record cache
  bool failed_originally = false;  // original schedule reproduced the failure
  bool reproduced = false;  // final re-verification run still fails
  RunResult verification;   // result of that final run
};

/// Minimise `cell`'s schedule. If the cell passes as given (nothing to
/// minimise), failed_originally is false and the schedule comes back
/// unchanged.
MinimizeResult minimize_schedule(const RunCell& cell,
                                 const MinimizeOptions& opts = {});

}  // namespace pfi::campaign
