#include "campaign/suite.hpp"

#include <algorithm>
#include <filesystem>

#include "conformance/conformance.hpp"

namespace pfi::campaign {

namespace fs = std::filesystem;

const std::vector<std::string>& suite_vendors() {
  // profiles::all_vendors() order, by runner CLI name.
  static const std::vector<std::string> v = {"sunos", "aix", "next",
                                             "solaris"};
  return v;
}

std::optional<std::vector<RunCell>> plan_suite(const std::string& dir,
                                               std::string* err) {
  std::error_code ec;
  std::vector<std::string> files;
  for (const fs::directory_entry& e : fs::directory_iterator(dir, ec)) {
    if (e.path().extension() == ".pdt") files.push_back(e.path().string());
  }
  if (ec) {
    if (err != nullptr) *err = dir + ": " + ec.message();
    return std::nullopt;
  }
  if (files.empty()) {
    if (err != nullptr) *err = dir + ": no .pdt files";
    return std::nullopt;
  }
  std::sort(files.begin(), files.end());

  std::vector<RunCell> cells;
  for (const std::string& file : files) {
    std::vector<lint::Diagnostic> diags;
    const auto prog = conformance::load_file(file, &diags);
    if (!prog) {
      lint::sort_diagnostics(&diags);
      if (err != nullptr) {
        *err = diags.empty() ? file + ": parse failed"
                             : lint::format_text(diags[0]);
      }
      return std::nullopt;
    }
    const std::string base = fs::path(file).stem().string();
    for (const std::string& vendor : suite_vendors()) {
      RunCell c;
      c.index = static_cast<int>(cells.size());
      c.id = "tcp/" + vendor + "/" + base + "/s" +
             std::to_string(prog->seed);
      c.protocol = "tcp";
      c.oracle = "conformance";
      c.vendor = vendor;
      c.conform_file = file;
      c.scenario = prog->scenario;
      c.seed = prog->seed;
      c.warmup = 0;
      c.duration = prog->duration;
      cells.push_back(std::move(c));
    }
  }
  return cells;
}

CampaignSpec suite_spec(const std::string& dir) {
  CampaignSpec spec;
  std::string base = fs::path(dir).filename().string();
  if (base.empty()) base = fs::path(dir).parent_path().filename().string();
  spec.name = "suite-" + (base.empty() ? std::string{"conformance"} : base);
  spec.protocol = "tcp";
  spec.oracle = "conformance";
  spec.vendors = suite_vendors();
  spec.warmup = 0;
  return spec;
}

}  // namespace pfi::campaign
