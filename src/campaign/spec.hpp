// Campaign specification and run-matrix planner.
//
// A CampaignSpec declares axes (message types x fault kinds x seeds, or
// literal .tcl script files x seeds, optionally x TCP vendor profiles); the
// planner expands the cross product into an ordered list of RunCells, each a
// fully self-contained description of one deterministic simulation. Specs
// load from a tiny line-oriented text format (see docs/CAMPAIGN.md):
//
//   name gmp-omission
//   protocol gmp
//   types gmp-heartbeat gmp-commit
//   faults drop delay
//   seeds 1000..1009
//   oracle quiet
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "campaign/schedule.hpp"
#include "pfi/scriptgen.hpp"
#include "sim/time.hpp"

namespace pfi::campaign {

struct CampaignSpec {
  std::string name = "campaign";
  std::string protocol = "gmp";  // gmp | tcp | tpc
  /// Oracle deciding pass/fail (see experiments/oracles.hpp):
  ///   gmp: agreement | liveness | quiet        tcp: spec | alive
  ///   tpc: atomic
  std::string oracle;  // empty = protocol default

  // --- fault axes -----------------------------------------------------------
  std::vector<std::string> types;  // message types to fault (schedule mode)
  std::vector<core::scriptgen::FaultKind> faults;
  std::vector<std::uint64_t> seeds = {1};
  std::vector<std::string> script_files;  // literal-.tcl mode (overrides
                                          // types x faults)
  std::vector<std::string> vendors;       // tcp only; empty = sunos

  // --- workload -------------------------------------------------------------
  /// Driver workload shape (tcp only; see conformance::known_scenarios()):
  /// bulk | echo | zero-window | keepalive. Empty = the legacy 512 B /
  /// 500 ms shape.
  std::string scenario;

  // --- schedule shape -------------------------------------------------------
  int burst = 1;             // events per cell: occurrences first..first+burst-1
  int first_occurrence = 1;
  bool on_send_side = true;
  sim::Duration delay = sim::msec(1500);  // for delay faults

  // --- run shape ------------------------------------------------------------
  int nodes = 3;        // gmp/tpc cluster size
  int target_node = 2;  // node whose PFI layer gets the scripts
  sim::Duration warmup = sim::sec(10);   // run this long before installing
  sim::Duration duration = sim::sec(70); // total simulated time
  sim::Duration jitter = 0;              // per-link jitter (seed-sensitive)
  bool buggy = false;  // enable the GMP daemon's seeded historical bugs

  // --- resilience ----------------------------------------------------------
  int timeout_ms = 0;  // wall-clock watchdog per cell (0 = off)
  std::uint64_t max_sim_events = 0;  // sim-event watchdog per cell (0 = off)
  int retries = 0;     // executor re-runs of *errored* cells (0 = off)
};

/// Parse the text form. Returns nullopt and sets *err on malformed input.
std::optional<CampaignSpec> parse_spec(const std::string& text,
                                       std::string* err);

/// Read + parse a spec file.
std::optional<CampaignSpec> load_spec_file(const std::string& path,
                                           std::string* err);

/// One cell of the run matrix: everything run_cell() needs, nothing shared.
struct RunCell {
  int index = 0;    // position in the planned matrix (stable result order)
  std::string id;   // unique, human-readable: "gmp/gmp-commit/drop/s1000"
  std::string protocol;
  std::string oracle;
  std::string vendor;       // tcp cells
  FaultSchedule schedule;   // schedule mode
  std::string script_file;  // literal-.tcl mode (schedule empty)
  /// Conformance mode: a .pdt timeline file. Overrides schedule/script_file
  /// as the fault load; required by (and usually paired with) the
  /// "conformance" oracle. See src/conformance/.
  std::string conform_file;
  /// Driver workload shape (tcp; empty = legacy 512 B / 500 ms).
  std::string scenario;
  std::uint64_t seed = 1;
  int nodes = 3;
  int target_node = 2;
  sim::Duration warmup = sim::sec(10);
  sim::Duration duration = sim::sec(70);
  sim::Duration jitter = 0;
  bool buggy = false;
  int timeout_ms = 0;                // wall-clock watchdog (0 = off)
  std::uint64_t max_sim_events = 0;  // sim-event watchdog (0 = off)
  // Runner-side toggle (not part of the planned matrix or cell identity):
  // capture a Chrome trace-event timeline fragment for this cell.
  bool capture_timeline = false;
};

/// Expand the spec's cross product in deterministic order:
/// vendor (tcp) -> type -> fault -> seed, or script -> seed.
std::vector<RunCell> plan(const CampaignSpec& spec);

/// Keep only cells whose id contains `substr` (empty keeps all); reindexes.
std::vector<RunCell> filter_cells(std::vector<RunCell> cells,
                                  const std::string& substr);

}  // namespace pfi::campaign
