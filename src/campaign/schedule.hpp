// Structured fault schedules.
//
// A campaign cell's fault load is not an opaque Tcl blob but a *list of
// events* — "on the Nth occurrence of message type T, apply fault F" — that
// compiles down to the same PFI filter scripts everything else uses
// (pfi::core::failure::Scripts). Keeping the structured form around is what
// makes failing runs minimisable: the delta-debugger removes events, not
// script lines, and recompiles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/json.hpp"
#include "pfi/failure.hpp"
#include "pfi/scriptgen.hpp"
#include "sim/time.hpp"

namespace pfi::campaign {

/// One scheduled fault. The per-occurrence kinds (drop / delay / duplicate /
/// corrupt) act on exactly one occurrence of `type`. kReorder is a *window*:
/// occurrences [occurrence, occurrence + batch - 1] are parked in a hold
/// queue and released in reverse order once the batch is full (compiled to
/// xHold / xHeldCount / xReleaseReversed, the same primitives
/// pfi::core::failure::byzantine_reorder uses).
struct FaultEvent {
  std::string type;  // message type to match; "*" = every message
  core::scriptgen::FaultKind kind = core::scriptgen::FaultKind::kDrop;
  int occurrence = 1;  // 1-based Nth occurrence of `type` at this layer
  bool on_send = true;  // send filter (outgoing) or receive filter (incoming)
  sim::Duration delay = sim::msec(1500);  // kDelay
  int copies = 1;                         // kDuplicate
  std::size_t corrupt_offset = 0;         // kCorrupt
  int batch = 3;                          // kReorder window (clamped to >= 2)

  [[nodiscard]] std::string summary() const;
  bool operator==(const FaultEvent&) const = default;
};

struct FaultSchedule {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }
  [[nodiscard]] std::size_t size() const { return events.size(); }

  /// Compile to installable PFI filter scripts. Events are grouped per side
  /// and per message type; each type gets one occurrence counter, so two
  /// events on different occurrences of the same type share state.
  [[nodiscard]] core::failure::Scripts compile() const;

  /// "drop gmp-commit#1; delay gmp-heartbeat#3" — for logs and records.
  [[nodiscard]] std::string summary() const;

  /// Serialise as a JSON array of event objects into `w`.
  void to_json(json::Writer& w) const;

  bool operator==(const FaultSchedule&) const = default;
};

/// Convenience builder: `count` events of `kind` on occurrences
/// [first, first + count) of `type`. For kReorder the whole burst is one
/// hold-queue window: a single event starting at `first_occurrence` with
/// batch = max(2, count).
FaultSchedule burst(const std::string& type, core::scriptgen::FaultKind kind,
                    int first_occurrence, int count, bool on_send = true,
                    sim::Duration delay = sim::msec(1500));

}  // namespace pfi::campaign
