// Fork-based cell isolation (--isolate).
//
// The paper's central irony is that a fault injector must survive the
// faults it provokes: a campaign cell whose testbed dereferences a wild
// pointer (or trips an ASan abort) takes the whole campaign process — and
// every finished result — down with it. Under isolation each cell runs in
// a forked child; the child executes run_cell() as usual and streams an
// exact serialisation of its RunResult back through a pipe, then _exit()s.
// The parent turns whatever actually happened into a record:
//
//   child wrote a result and exited 0   -> that result, byte-exact
//   child died on a signal              -> error record "signal SIGSEGV (11)"
//   child wedged past its wall budget   -> SIGKILL + the same deterministic
//                                          timeout record the in-process
//                                          watchdog would have produced
//   child exited non-zero (ASan abort)  -> error record with the status
//
// The wire format round-trips every field exactly (doubles travel as %a
// hex floats), so records remain byte-identical with and without --isolate.
// Fork-safety note: spawn only from a single-threaded parent (the isolate
// executor path is single-threaded by design; the children provide the
// parallelism).
#pragma once

#include <string>

#include <sys/types.h>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"

namespace pfi::campaign {

/// Exact, self-delimiting serialisation of a RunResult (`key len\nbytes\n`
/// entries). Not JSON on purpose: decoding must be trivial and lossless.
std::string wire_encode(const RunResult& r);
bool wire_decode(const std::string& bytes, RunResult* out);

struct SandboxChild {
  pid_t pid = -1;
  int fd = -1;  // read end of the result pipe (parent side)
};

/// Fork a child running `cell`; returns false (with *err) if fork/pipe
/// fails. The caller owns child.fd and must waitpid(child.pid).
bool sandbox_spawn(const RunCell& cell, SandboxChild* child, std::string* err);

/// Turn a finished child into a record (see table above). `bytes` is
/// everything read from the pipe; `killed_on_timeout` means the parent
/// SIGKILLed the child for exceeding the cell's wall-clock budget.
RunResult sandbox_finish(const RunCell& cell, int wait_status,
                         const std::string& bytes, bool killed_on_timeout);

/// Blocking one-cell convenience (tests, --jobs 1): spawn, enforce the
/// cell's wall budget (+ grace, so the child's cooperative watchdog gets
/// first claim on producing the timeout record), reap, decode.
RunResult run_cell_sandboxed(const RunCell& cell);

}  // namespace pfi::campaign
