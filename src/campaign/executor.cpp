#include "campaign/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/sandbox.hpp"

namespace pfi::campaign {

namespace {

bool stop_requested(const ExecutorOptions& opts) {
  return opts.should_stop && opts.should_stop();
}

/// Slot-order streaming for on_result_ordered: results may land in any
/// completion order; emit() advances the maximal filled prefix and fires
/// the callback once per slot, in order. Callers serialise calls (the
/// threaded path holds cb_mutex; the other paths are single-threaded).
class OrderedEmitter {
 public:
  OrderedEmitter(const std::vector<RunResult>* results,
                 const ExecutorOptions& opts)
      : results_(results), opts_(opts), filled_(results->size(), false) {}

  void emit(std::size_t slot) {
    if (!opts_.on_result_ordered) return;
    filled_[slot] = true;
    while (next_ < filled_.size() && filled_[next_]) {
      opts_.on_result_ordered((*results_)[next_]);
      ++next_;
    }
  }

 private:
  const std::vector<RunResult>* results_;
  const ExecutorOptions& opts_;
  std::vector<bool> filled_;
  std::size_t next_ = 0;
};

int backoff_ms(const ExecutorOptions& opts, int attempt) {
  long ms = std::max(1, opts.retry_backoff_ms);
  for (int k = 1; k < attempt && ms < 2000; ++k) ms *= 2;
  return static_cast<int>(std::min<long>(ms, 2000));
}

/// In-process execution of one cell with the retry policy applied.
RunResult run_one_with_retries(const RunCell& cell,
                               const ExecutorOptions& opts,
                               std::mutex* cb_mutex) {
  const int max_attempts = 1 + std::max(0, opts.retries);
  for (int attempt = 1;; ++attempt) {
    RunResult r = run_cell(cell);
    r.attempts = attempt;
    if (!r.errored() || attempt >= max_attempts) return r;
    if (stop_requested(opts)) return r;  // don't burn backoff on shutdown
    if (opts.on_retry) {
      if (cb_mutex != nullptr) {
        std::lock_guard<std::mutex> lock(*cb_mutex);
        opts.on_retry(r, attempt, max_attempts);
      } else {
        opts.on_retry(r, attempt, max_attempts);
      }
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(backoff_ms(opts, attempt)));
  }
}

// ---------------------------------------------------------------------------
// Isolated execution: a single-threaded pool of forked children. The parent
// only forks, polls pipes and reaps — all simulation happens in children, so
// fork() never races a sibling thread's heap lock.
// ---------------------------------------------------------------------------

struct Pending {
  std::size_t slot = 0;
  int attempt = 1;
  std::chrono::steady_clock::time_point not_before;  // retry backoff
};

struct Active {
  std::size_t slot = 0;
  int attempt = 1;
  SandboxChild child;
  std::string bytes;
  bool killed = false;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline;
};

/// Grace past the cell's own wall budget before the parent SIGKILLs: the
/// child's cooperative watchdog gets first claim on the timeout record.
constexpr int kKillGraceMs = 2000;

std::vector<RunResult> run_cells_isolated(const std::vector<RunCell>& cells,
                                          const ExecutorOptions& opts) {
  std::vector<RunResult> results(cells.size());
  const int capacity =
      std::max(1, std::min<int>(opts.jobs, static_cast<int>(cells.size())));
  const int max_attempts = 1 + std::max(0, opts.retries);

  std::deque<Pending> queue;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    queue.push_back({i, 1, std::chrono::steady_clock::now()});
  }
  std::vector<Active> active;
  active.reserve(static_cast<std::size_t>(capacity));
  bool stopped = false;
  OrderedEmitter ordered(&results, opts);

  auto complete = [&](const Active& a, RunResult r) {
    r.attempts = a.attempt;
    if (r.errored() && a.attempt < max_attempts && !stopped) {
      if (opts.on_retry) opts.on_retry(r, a.attempt, max_attempts);
      Pending p;
      p.slot = a.slot;
      p.attempt = a.attempt + 1;
      p.not_before = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(backoff_ms(opts, a.attempt));
      queue.push_front(p);
      return;
    }
    results[a.slot] = std::move(r);
    if (opts.on_result) opts.on_result(results[a.slot]);
    ordered.emit(a.slot);
  };

  while (!queue.empty() || !active.empty()) {
    if (!stopped && stop_requested(opts)) {
      stopped = true;
      queue.clear();  // in-flight children drain; nothing new launches
    }
    const auto now = std::chrono::steady_clock::now();

    // Launch while there is capacity and runnable work.
    std::size_t deferred = 0;
    while (static_cast<int>(active.size()) < capacity &&
           deferred < queue.size()) {
      if (queue.front().not_before > now) {  // backoff not elapsed; rotate
        queue.push_back(queue.front());
        queue.pop_front();
        ++deferred;
        continue;
      }
      Pending p = queue.front();
      queue.pop_front();
      const RunCell& cell = cells[p.slot];
      Active a;
      a.slot = p.slot;
      a.attempt = p.attempt;
      std::string err;
      if (!sandbox_spawn(cell, &a.child, &err)) {
        RunResult r;
        r.index = cell.index;
        r.id = cell.id;
        r.oracle = cell.oracle;
        r.seed = cell.seed;
        r.sim_seconds = sim::to_seconds(cell.duration);
        r.error = err;
        complete(a, std::move(r));
        continue;
      }
      if (cell.timeout_ms > 0) {
        a.has_deadline = true;
        a.deadline =
            now + std::chrono::milliseconds(cell.timeout_ms + kKillGraceMs);
      }
      active.push_back(std::move(a));
    }
    if (active.empty()) {
      if (!queue.empty()) {
        // Everything runnable is backing off; nap until the nearest wakeup.
        auto soonest = queue.front().not_before;
        for (const Pending& p : queue) soonest = std::min(soonest, p.not_before);
        const auto nap = std::chrono::duration_cast<std::chrono::milliseconds>(
                             soonest - std::chrono::steady_clock::now())
                             .count();
        if (nap > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(
              std::min<long long>(nap, 200)));
        }
      }
      continue;
    }

    // Wait for output, EOF, or the nearest kill deadline.
    int wait_ms = 200;  // bounded: should_stop and backoffs need sampling
    for (const Active& a : active) {
      if (!a.has_deadline || a.killed) continue;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            a.deadline - std::chrono::steady_clock::now())
                            .count();
      wait_ms = std::min<long long>(wait_ms, std::max<long long>(left, 0));
    }
    std::vector<struct pollfd> pfds;
    pfds.reserve(active.size());
    for (const Active& a : active) {
      pfds.push_back({a.child.fd, POLLIN, 0});
    }
    const int pr =
        poll(pfds.data(), static_cast<nfds_t>(pfds.size()), wait_ms);
    if (pr < 0 && errno != EINTR) break;  // poll itself broken; bail out

    const auto after = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < active.size();) {
      Active& a = active[k];
      bool done = false;
      if (pr > 0 && (pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        char buf[4096];
        const ssize_t n = read(a.child.fd, buf, sizeof buf);
        if (n > 0) {
          a.bytes.append(buf, static_cast<std::size_t>(n));
        } else if (n == 0) {
          done = true;  // EOF: child exited
        } else if (errno != EINTR && errno != EAGAIN) {
          done = true;
        }
      }
      if (!done && a.has_deadline && !a.killed && after >= a.deadline) {
        kill(a.child.pid, SIGKILL);  // wedged: drain to EOF next rounds
        a.killed = true;
      }
      if (!done) {
        ++k;
        continue;
      }
      close(a.child.fd);
      int status = 0;
      while (waitpid(a.child.pid, &status, 0) < 0 && errno == EINTR) {
      }
      complete(a, sandbox_finish(cells[a.slot], status, a.bytes, a.killed));
      active[k] = std::move(active.back());
      active.pop_back();
      pfds[k] = pfds.back();  // keep revents aligned with active
      pfds.pop_back();
    }
  }
  return results;
}

}  // namespace

std::vector<RunResult> run_cells(const std::vector<RunCell>& cells,
                                 const ExecutorOptions& opts) {
  if (opts.isolate) return run_cells_isolated(cells, opts);

  std::vector<RunResult> results(cells.size());
  const int jobs =
      std::max(1, std::min<int>(opts.jobs, static_cast<int>(cells.size())));

  OrderedEmitter ordered(&results, opts);

  if (jobs == 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (stop_requested(opts)) break;
      results[i] = run_one_with_retries(cells[i], opts, nullptr);
      if (opts.on_result) opts.on_result(results[i]);
      ordered.emit(i);
    }
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::mutex cb_mutex;
  auto worker = [&] {
    for (;;) {
      if (stop_requested(opts)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= cells.size()) return;
      results[i] = run_one_with_retries(cells[i], opts, &cb_mutex);
      if (opts.on_result || opts.on_result_ordered) {
        std::lock_guard<std::mutex> lock(cb_mutex);
        if (opts.on_result) opts.on_result(results[i]);
        ordered.emit(i);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(jobs));
  for (int t = 0; t < jobs; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  return results;
}

Summary summarize(const std::vector<RunResult>& results) {
  Summary s;
  s.total = static_cast<int>(results.size());
  for (const RunResult& r : results) {
    if (r.index < 0) {
      ++s.skipped;
    } else if (r.errored()) {
      ++s.errored;
      s.failures.push_back(&r);
    } else if (r.pass) {
      ++s.passed;
    } else {
      ++s.failed;
      s.failures.push_back(&r);
    }
  }
  return s;
}

}  // namespace pfi::campaign
