#include "campaign/executor.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

namespace pfi::campaign {

std::vector<RunResult> run_cells(const std::vector<RunCell>& cells,
                                 const ExecutorOptions& opts) {
  std::vector<RunResult> results(cells.size());
  const int jobs =
      std::max(1, std::min<int>(opts.jobs, static_cast<int>(cells.size())));

  if (jobs == 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      results[i] = run_cell(cells[i]);
      if (opts.on_result) opts.on_result(results[i]);
    }
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::mutex cb_mutex;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= cells.size()) return;
      results[i] = run_cell(cells[i]);
      if (opts.on_result) {
        std::lock_guard<std::mutex> lock(cb_mutex);
        opts.on_result(results[i]);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(jobs));
  for (int t = 0; t < jobs; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  return results;
}

Summary summarize(const std::vector<RunResult>& results) {
  Summary s;
  s.total = static_cast<int>(results.size());
  for (const RunResult& r : results) {
    if (r.errored()) {
      ++s.errored;
      s.failures.push_back(&r);
    } else if (r.pass) {
      ++s.passed;
    } else {
      ++s.failed;
      s.failures.push_back(&r);
    }
  }
  return s;
}

}  // namespace pfi::campaign
