#include "campaign/spec.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace pfi::campaign {

using core::scriptgen::FaultKind;

namespace {

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

bool parse_fault(const std::string& s, FaultKind* out) {
  if (s == "drop") *out = FaultKind::kDrop;
  else if (s == "delay") *out = FaultKind::kDelay;
  else if (s == "duplicate") *out = FaultKind::kDuplicate;
  else if (s == "corrupt") *out = FaultKind::kCorrupt;
  else if (s == "reorder") *out = FaultKind::kReorder;
  else return false;
  return true;
}

/// "1000..1033" (inclusive) or a single number.
bool parse_seed_token(const std::string& tok,
                      std::vector<std::uint64_t>* seeds) {
  const auto dots = tok.find("..");
  char* end = nullptr;
  if (dots == std::string::npos) {
    const std::uint64_t v = std::strtoull(tok.c_str(), &end, 10);
    if (*end != '\0') return false;
    seeds->push_back(v);
    return true;
  }
  const std::string lo_s = tok.substr(0, dots), hi_s = tok.substr(dots + 2);
  const std::uint64_t lo = std::strtoull(lo_s.c_str(), &end, 10);
  if (*end != '\0' || lo_s.empty()) return false;
  const std::uint64_t hi = std::strtoull(hi_s.c_str(), &end, 10);
  if (*end != '\0' || hi_s.empty() || hi < lo || hi - lo > 100000) {
    return false;
  }
  for (std::uint64_t s = lo; s <= hi; ++s) seeds->push_back(s);
  return true;
}

std::string basename_no_ext(const std::string& path) {
  auto slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  auto dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base = base.substr(0, dot);
  return base;
}

std::string default_oracle(const std::string& protocol) {
  if (protocol == "tcp") return "spec";
  if (protocol == "tpc") return "atomic";
  return "agreement";
}

}  // namespace

std::optional<CampaignSpec> parse_spec(const std::string& text,
                                       std::string* err) {
  CampaignSpec spec;
  spec.seeds.clear();
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& msg) {
    if (err) *err = "line " + std::to_string(lineno) + ": " + msg;
    return std::nullopt;
  };

  while (std::getline(is, line)) {
    ++lineno;
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    const auto toks = split_ws(line);
    if (toks.empty()) continue;
    const std::string& key = toks[0];
    const std::vector<std::string> args(toks.begin() + 1, toks.end());
    auto one = [&]() -> const std::string& {
      static const std::string empty;
      return args.empty() ? empty : args[0];
    };

    if (key == "name") {
      spec.name = one();
    } else if (key == "protocol") {
      spec.protocol = one();
      if (spec.protocol != "gmp" && spec.protocol != "tcp" &&
          spec.protocol != "tpc") {
        return fail("unknown protocol '" + spec.protocol + "'");
      }
    } else if (key == "oracle") {
      spec.oracle = one();
    } else if (key == "types") {
      spec.types = args;
    } else if (key == "faults") {
      spec.faults.clear();
      for (const auto& a : args) {
        FaultKind k;
        if (!parse_fault(a, &k)) {
          return fail("unknown fault '" + a +
                      "' (drop|delay|duplicate|corrupt|reorder)");
        }
        spec.faults.push_back(k);
      }
    } else if (key == "seeds") {
      for (const auto& a : args) {
        if (!parse_seed_token(a, &spec.seeds)) {
          return fail("bad seed token '" + a + "' (N or LO..HI)");
        }
      }
    } else if (key == "scripts") {
      for (const auto& a : args) spec.script_files.push_back(a);
    } else if (key == "vendors") {
      spec.vendors = args;
    } else if (key == "scenario") {
      spec.scenario = one();
    } else if (key == "burst") {
      spec.burst = std::atoi(one().c_str());
      if (spec.burst < 1) return fail("burst must be >= 1");
    } else if (key == "first_occurrence") {
      spec.first_occurrence = std::atoi(one().c_str());
    } else if (key == "side") {
      if (one() == "send") spec.on_send_side = true;
      else if (one() == "receive") spec.on_send_side = false;
      else return fail("side must be send|receive");
    } else if (key == "delay_ms") {
      spec.delay = sim::msec(std::atoi(one().c_str()));
    } else if (key == "nodes") {
      spec.nodes = std::atoi(one().c_str());
      if (spec.nodes < 2) return fail("nodes must be >= 2");
    } else if (key == "target_node") {
      spec.target_node = std::atoi(one().c_str());
    } else if (key == "warmup_s") {
      spec.warmup = sim::sec(std::atoi(one().c_str()));
    } else if (key == "duration_s") {
      spec.duration = sim::sec(std::atoi(one().c_str()));
    } else if (key == "jitter_ms") {
      spec.jitter = sim::msec(std::atoi(one().c_str()));
    } else if (key == "buggy") {
      spec.buggy = one() == "true" || one() == "1";
    } else if (key == "timeout_ms") {
      spec.timeout_ms = std::atoi(one().c_str());
      if (spec.timeout_ms < 0) return fail("timeout_ms must be >= 0");
    } else if (key == "max_events") {
      char* end = nullptr;
      spec.max_sim_events = std::strtoull(one().c_str(), &end, 10);
      if (end == nullptr || *end != '\0') return fail("bad max_events");
    } else if (key == "retries") {
      spec.retries = std::atoi(one().c_str());
      if (spec.retries < 0) return fail("retries must be >= 0");
    } else {
      return fail("unknown key '" + key + "'");
    }
  }

  if (spec.seeds.empty()) spec.seeds.push_back(1);
  if (spec.oracle.empty()) spec.oracle = default_oracle(spec.protocol);
  if (spec.script_files.empty()) {
    if (spec.types.empty()) {
      lineno = 0;
      return fail("spec needs 'types' (with 'faults') or 'scripts'");
    }
    if (spec.faults.empty()) spec.faults.push_back(FaultKind::kDrop);
  }
  return spec;
}

std::optional<CampaignSpec> load_spec_file(const std::string& path,
                                           std::string* err) {
  std::ifstream f(path);
  if (!f) {
    if (err) *err = "cannot read " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  auto spec = parse_spec(buf.str(), err);
  if (!spec && err) *err = path + ": " + *err;
  return spec;
}

std::vector<RunCell> plan(const CampaignSpec& spec) {
  std::vector<RunCell> cells;
  const std::vector<std::string> vendors =
      spec.protocol == "tcp"
          ? (spec.vendors.empty() ? std::vector<std::string>{"sunos"}
                                  : spec.vendors)
          : std::vector<std::string>{""};

  auto base_cell = [&](const std::string& vendor, std::uint64_t seed) {
    RunCell c;
    c.index = static_cast<int>(cells.size());
    c.protocol = spec.protocol;
    c.oracle = spec.oracle;
    c.vendor = vendor;
    c.seed = seed;
    c.nodes = spec.nodes;
    c.target_node = spec.target_node;
    c.warmup = spec.warmup;
    c.duration = spec.duration;
    c.jitter = spec.jitter;
    c.buggy = spec.buggy;
    c.timeout_ms = spec.timeout_ms;
    c.max_sim_events = spec.max_sim_events;
    c.scenario = spec.scenario;
    return c;
  };
  auto id_prefix = [&](const std::string& vendor) {
    return vendor.empty() ? spec.protocol : spec.protocol + "/" + vendor;
  };

  for (const auto& vendor : vendors) {
    if (!spec.script_files.empty()) {
      for (const auto& file : spec.script_files) {
        for (std::uint64_t seed : spec.seeds) {
          RunCell c = base_cell(vendor, seed);
          c.script_file = file;
          c.id = id_prefix(vendor) + "/" + basename_no_ext(file) + "/s" +
                 std::to_string(seed);
          cells.push_back(std::move(c));
        }
      }
      continue;
    }
    for (const auto& type : spec.types) {
      for (FaultKind kind : spec.faults) {
        for (std::uint64_t seed : spec.seeds) {
          RunCell c = base_cell(vendor, seed);
          c.schedule = burst(type, kind, spec.first_occurrence, spec.burst,
                             spec.on_send_side, spec.delay);
          c.id = id_prefix(vendor) + "/" + type + "/" +
                 core::scriptgen::to_string(kind) + "/s" +
                 std::to_string(seed);
          cells.push_back(std::move(c));
        }
      }
    }
  }
  return cells;
}

std::vector<RunCell> filter_cells(std::vector<RunCell> cells,
                                  const std::string& substr) {
  if (substr.empty()) return cells;
  std::vector<RunCell> out;
  for (auto& c : cells) {
    if (c.id.find(substr) != std::string::npos) {
      c.index = static_cast<int>(out.size());
      out.push_back(std::move(c));
    }
  }
  return out;
}

}  // namespace pfi::campaign
