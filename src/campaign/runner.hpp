// Deterministic execution of one campaign cell.
//
// Each call builds a private testbed (scheduler, network, protocol stacks,
// PFI layers) on the caller's stack, runs the simulation, applies the cell's
// oracle, and tears everything down. Nothing is shared between calls, so
// cells can run concurrently from any number of threads — the executor's
// whole parallelism story rests on this function being self-contained.
#pragma once

#include <cstdint>
#include <string>

#include "campaign/json.hpp"
#include "campaign/spec.hpp"

namespace pfi::campaign {

/// Outcome of one cell. Everything here is a pure function of the cell
/// (wall-clock time is tracked campaign-wide, never per-record, so records
/// compare byte-identical across --jobs settings).
struct RunResult {
  int index = -1;
  std::string id;
  bool pass = false;
  std::string reason;  // oracle's explanation when failing
  std::string oracle;
  std::uint64_t seed = 0;
  std::uint64_t faults_injected = 0;  // dropped+delayed+duplicated+corrupted
  std::uint64_t messages_seen = 0;    // intercepted by the target PFI layer
  std::uint64_t script_errors = 0;
  std::uint64_t trace_records = 0;
  double sim_seconds = 0;
  std::string error;  // non-oracle failure (bad script file, bad protocol)

  [[nodiscard]] bool errored() const { return !error.empty(); }
};

/// Run one cell to completion. Never throws; infrastructure problems land in
/// RunResult::error.
RunResult run_cell(const RunCell& cell);

/// Serialise the deterministic per-run record (one JSON object, no
/// whitespace) — the unit compared by the determinism test and emitted as a
/// JSON line per run.
std::string record_json(const RunResult& r);

}  // namespace pfi::campaign
