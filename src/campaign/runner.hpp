// Deterministic execution of one campaign cell.
//
// Each call builds a private testbed (scheduler, network, protocol stacks,
// PFI layers) on the caller's stack, runs the simulation, applies the cell's
// oracle, and tears everything down. Nothing is shared between calls, so
// cells can run concurrently from any number of threads — the executor's
// whole parallelism story rests on this function being self-contained.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/json.hpp"
#include "campaign/spec.hpp"
#include "obs/coverage.hpp"
#include "obs/metrics.hpp"

namespace pfi::campaign {

/// Outcome of one cell. Everything here is a pure function of the cell
/// (wall-clock time is tracked campaign-wide, never per-record, so records
/// compare byte-identical across --jobs settings).
struct RunResult {
  int index = -1;
  std::string id;
  bool pass = false;
  std::string reason;  // oracle's explanation when failing
  std::string oracle;
  std::uint64_t seed = 0;
  std::uint64_t faults_injected = 0;  // dropped+delayed+duplicated+corrupted
  std::uint64_t messages_seen = 0;    // intercepted by the target PFI layer
  std::uint64_t script_errors = 0;
  std::uint64_t trace_records = 0;
  double sim_seconds = 0;
  /// Every spec-checker violation of a tcp `spec` cell ("rule @t: detail"),
  /// capped at kMaxViolations with a "+N more" tail entry.
  std::vector<std::string> violations;
  /// Conformance cells only: one rendered line per .pdt timeline step
  /// ("ok   expect tcp-synack @0.000s..2.000s  [first at 0.105s ...]").
  /// Part of record_json when non-empty — the per-step pass/fail matrix the
  /// golden suite pins.
  std::vector<std::string> steps;
  std::string error;  // non-oracle failure (bad script file, bad protocol)
  /// Behavioural fingerprint of the run (message types, fired fault actions,
  /// protocol state transitions + FNV digest). Part of record_json when
  /// non-empty; empty on timeout/error skeleton records.
  obs::Coverage coverage;
  /// Per-cell metric snapshot (sorted by name). NOT part of record_json —
  /// the campaign CLI merges cell snapshots for --metrics-out.
  std::vector<obs::MetricSample> metrics;
  /// Chrome trace-event fragment, only when the cell asked for one
  /// (RunCell::capture_timeline). NOT part of record_json.
  std::string timeline;
  /// Executions this result took (campaign-side retry bookkeeping; > 1 only
  /// when the executor re-ran an errored cell). NOT part of record_json —
  /// the deterministic record must not depend on retry luck.
  int attempts = 1;

  static constexpr std::size_t kMaxViolations = 32;

  [[nodiscard]] bool errored() const { return !error.empty(); }
  [[nodiscard]] bool timed_out() const {
    return error.rfind("timeout:", 0) == 0;
  }
};

/// Run one cell to completion. Never throws; infrastructure problems land in
/// RunResult::error. When the cell carries a watchdog budget (timeout_ms /
/// max_sim_events) and it expires, the result is a deterministic `timeout`
/// error record: volatile stats are zeroed so the record's bytes do not
/// depend on how far the run got before the (wall-clock) watchdog fired.
RunResult run_cell(const RunCell& cell);

/// Serialise the deterministic per-run record (one JSON object, no
/// whitespace) — the unit compared by the determinism test and emitted as a
/// JSON line per run.
std::string record_json(const RunResult& r);

}  // namespace pfi::campaign
