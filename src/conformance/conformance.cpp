#include "conformance/conformance.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace pfi::conformance {

using core::scriptgen::FaultKind;

const char* to_string(StepKind k) {
  switch (k) {
    case StepKind::kInject: return "inject";
    case StepKind::kExpect: return "expect";
    case StepKind::kExpectNo: return "expect-no";
  }
  return "?";
}

const std::vector<std::string>& known_scenarios() {
  static const std::vector<std::string> s = {"bulk", "echo", "keepalive",
                                             "zero-window"};
  return s;
}

sim::TimePoint Step::window_end(sim::Duration end_of_run) const {
  if (window < 0) return end_of_run;
  return std::min<sim::TimePoint>(at + window, end_of_run);
}

namespace {

struct Token {
  std::string text;
  int col = 0;  // 1-based
};

/// Split one line into whitespace-separated tokens with column anchors;
/// a `#` starts a comment.
std::vector<Token> tokenize(const std::string& line) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])) != 0) {
      ++i;
    }
    if (i >= line.size() || line[i] == '#') break;
    const std::size_t start = i;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])) == 0 &&
           line[i] != '#') {
      ++i;
    }
    out.push_back({line.substr(start, i - start), static_cast<int>(start + 1)});
  }
  return out;
}

/// "1.5s" / "200ms" / "30" (seconds) / "2m" / "3h" -> microseconds.
/// Integer-exact: the fraction is scaled digit by digit, no floating point.
std::optional<sim::Duration> parse_time(const std::string& tok) {
  std::size_t i = 0;
  while (i < tok.size() &&
         std::isdigit(static_cast<unsigned char>(tok[i])) != 0) {
    ++i;
  }
  if (i == 0) return std::nullopt;
  const std::size_t whole_end = i;
  std::string frac;
  if (i < tok.size() && tok[i] == '.') {
    const std::size_t dot = i++;
    while (i < tok.size() &&
           std::isdigit(static_cast<unsigned char>(tok[i])) != 0) {
      ++i;
    }
    frac = tok.substr(dot + 1, i - dot - 1);
    if (frac.empty()) return std::nullopt;
  }
  const std::string unit = tok.substr(i);
  sim::Duration mult = 0;
  if (unit.empty() || unit == "s") {
    mult = sim::kSecond;
  } else if (unit == "ms") {
    mult = sim::kMillisecond;
  } else if (unit == "us") {
    mult = sim::kMicrosecond;
  } else if (unit == "m") {
    mult = sim::kMinute;
  } else if (unit == "h") {
    mult = sim::kHour;
  } else {
    return std::nullopt;
  }
  sim::Duration whole = 0;
  for (std::size_t k = 0; k < whole_end; ++k) {
    whole = whole * 10 + (tok[k] - '0');
  }
  sim::Duration value = whole * mult;
  sim::Duration scale = mult;
  for (char c : frac) {
    scale /= 10;
    value += (c - '0') * scale;
  }
  return value;
}

std::optional<std::int64_t> parse_int(const std::string& tok) {
  if (tok.empty()) return std::nullopt;
  std::int64_t v = 0;
  for (char c : tok) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return std::nullopt;
    v = v * 10 + (c - '0');
  }
  return v;
}

std::optional<FaultKind> parse_fault(const std::string& tok) {
  if (tok == "drop") return FaultKind::kDrop;
  if (tok == "delay") return FaultKind::kDelay;
  if (tok == "duplicate") return FaultKind::kDuplicate;
  if (tok == "corrupt") return FaultKind::kCorrupt;
  if (tok == "reorder") return FaultKind::kReorder;
  return std::nullopt;
}

std::string fmt_s(sim::TimePoint t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", sim::to_seconds(t));
  return buf;
}

class Parser {
 public:
  Parser(const std::string& file, std::vector<lint::Diagnostic>* diags)
      : file_(file), diags_(diags) {}

  std::optional<Program> run(const std::string& text) {
    Program prog;
    prog.source_file = file_;
    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
      ++lineno;
      const std::vector<Token> toks = tokenize(line);
      if (toks.empty()) continue;
      directive(prog, toks, lineno);
    }
    if (prog.duration <= 0) {
      error(lineno, 1, "parse-error", "duration must be positive",
            "add e.g. `duration 60s` to the header");
    }
    if (errors_ > 0) return std::nullopt;
    return prog;
  }

 private:
  void emit(lint::Severity sev, int line, int col, const std::string& rule,
            const std::string& msg, const std::string& hint) {
    if (sev == lint::Severity::kError) ++errors_;
    diags_->push_back({sev, rule, file_, line, col, msg, hint});
  }
  void error(int line, int col, const std::string& rule,
             const std::string& msg, const std::string& hint = {}) {
    emit(lint::Severity::kError, line, col, rule, msg, hint);
  }

  void directive(Program& prog, const std::vector<Token>& toks, int line) {
    const std::string& head = toks[0].text;
    const auto arg = [&](std::size_t i) -> const Token* {
      return i < toks.size() ? &toks[i] : nullptr;
    };
    if (head == "at") {
      step(prog, toks, line);
      return;
    }
    if (head == "name" || head == "protocol" || head == "scenario") {
      const Token* v = arg(1);
      if (v == nullptr || toks.size() != 2) {
        error(line, toks[0].col, "parse-error",
              "`" + head + "` takes exactly one word");
        return;
      }
      if (head == "name") {
        prog.name = v->text;
      } else if (head == "protocol") {
        prog.protocol = v->text;
      } else {
        const auto& known = known_scenarios();
        if (std::find(known.begin(), known.end(), v->text) == known.end()) {
          std::string list;
          for (const auto& s : known) list += (list.empty() ? "" : ", ") + s;
          error(line, v->col, "bad-scenario",
                "unknown scenario \"" + v->text + "\"",
                "one of: " + list);
          return;
        }
        prog.scenario = v->text;
      }
      return;
    }
    if (head == "duration" || head == "seed") {
      const Token* v = arg(1);
      if (v == nullptr || toks.size() != 2) {
        error(line, toks[0].col, "parse-error",
              "`" + head + "` takes exactly one value");
        return;
      }
      if (head == "duration") {
        const auto d = parse_time(v->text);
        if (!d || *d <= 0) {
          error(line, v->col, "parse-error",
                "bad duration \"" + v->text + "\"",
                "a positive time like 60s, 1500ms or 2h");
          return;
        }
        prog.duration = *d;
      } else {
        const auto s = parse_int(v->text);
        if (!s) {
          error(line, v->col, "parse-error", "bad seed \"" + v->text + "\"");
          return;
        }
        prog.seed = static_cast<std::uint64_t>(*s);
      }
      return;
    }
    error(line, toks[0].col, "unknown-directive",
          "unknown directive \"" + head + "\"",
          "directives: name, protocol, scenario, duration, seed, at");
  }

  void step(Program& prog, const std::vector<Token>& toks, int line) {
    if (toks.size() < 3) {
      error(line, toks[0].col, "parse-error",
            "usage: at <time> inject|expect|expect-no ...");
      return;
    }
    const auto at = parse_time(toks[1].text);
    if (!at) {
      error(line, toks[1].col, "parse-error",
            "bad timestamp \"" + toks[1].text + "\"",
            "a time like 0, 2.5s, 200ms or 2h");
      return;
    }
    Step s;
    s.at = *at;
    s.line = line;
    const std::string& verb = toks[2].text;
    std::size_t i = 3;
    if (verb == "inject") {
      s.kind = StepKind::kInject;
      if (toks.size() < 5) {
        error(line, toks[2].col, "parse-error",
              "usage: at <time> inject <fault> <msg-pattern> [options]");
        return;
      }
      const auto fault = parse_fault(toks[3].text);
      if (!fault) {
        error(line, toks[3].col, "parse-error",
              "unknown fault \"" + toks[3].text + "\"",
              "one of: drop, delay, duplicate, corrupt, reorder");
        return;
      }
      s.fault = *fault;
      s.pattern = toks[4].text;
      i = 5;
    } else if (verb == "expect" || verb == "expect-no") {
      s.kind = verb == "expect" ? StepKind::kExpect : StepKind::kExpectNo;
      if (toks.size() < 4) {
        error(line, toks[2].col, "parse-error",
              "usage: at <time> " + verb + " <msg-pattern> [options]");
        return;
      }
      s.pattern = toks[3].text;
      i = 4;
    } else {
      error(line, toks[2].col, "unknown-directive",
            "unknown step \"" + verb + "\"",
            "steps: inject, expect, expect-no");
      return;
    }
    if (!options(s, toks, i, line)) return;
    prog.steps.push_back(s);
  }

  bool options(Step& s, const std::vector<Token>& toks, std::size_t i,
               int line) {
    const bool inject = s.kind == StepKind::kInject;
    for (; i < toks.size(); i += 2) {
      const std::string& key = toks[i].text;
      if (i + 1 >= toks.size()) {
        error(line, toks[i].col, "parse-error",
              "option `" + key + "` is missing its value");
        return false;
      }
      const Token& v = toks[i + 1];
      const auto want_time = [&]() -> std::optional<sim::Duration> {
        const auto t = parse_time(v.text);
        if (!t) {
          error(line, v.col, "parse-error",
                "bad time \"" + v.text + "\" for `" + key + "`");
        }
        return t;
      };
      const auto want_int = [&](std::int64_t lo) -> std::optional<std::int64_t> {
        const auto n = parse_int(v.text);
        if (!n || *n < lo) {
          error(line, v.col, "parse-error",
                "bad value \"" + v.text + "\" for `" + key + "` (integer >= " +
                    std::to_string(lo) + ")");
          return std::nullopt;
        }
        return n;
      };
      if (inject && key == "after") {
        const auto n = want_int(0);
        if (!n) return false;
        s.after = static_cast<int>(*n);
      } else if (inject && key == "count") {
        const auto n = want_int(1);
        if (!n) return false;
        s.count = static_cast<int>(*n);
      } else if (inject && key == "for") {
        const auto t = want_time();
        if (!t) return false;
        s.window = *t;
      } else if (inject && key == "side") {
        if (v.text != "send" && v.text != "receive") {
          error(line, v.col, "parse-error",
                "side must be `send` or `receive`");
          return false;
        }
        s.on_send_side = v.text == "send";
      } else if (inject && key == "delay") {
        const auto t = want_time();
        if (!t) return false;
        s.delay = *t;
      } else if (inject && key == "copies") {
        const auto n = want_int(1);
        if (!n) return false;
        s.copies = static_cast<int>(*n);
      } else if (inject && key == "offset") {
        const auto n = want_int(0);
        if (!n) return false;
        s.offset = static_cast<std::size_t>(*n);
      } else if (inject && key == "batch") {
        const auto n = want_int(2);
        if (!n) return false;
        s.batch = static_cast<int>(*n);
      } else if (!inject && s.kind == StepKind::kExpect && key == "within") {
        const auto t = want_time();
        if (!t) return false;
        s.window = *t;
      } else if (!inject && s.kind == StepKind::kExpectNo && key == "for") {
        const auto t = want_time();
        if (!t) return false;
        s.window = *t;
      } else if (!inject && key == "dir") {
        if (v.text != "send" && v.text != "recv") {
          error(line, v.col, "parse-error", "dir must be `send` or `recv`");
          return false;
        }
        s.dir = v.text;
      } else if (!inject && s.kind == StepKind::kExpect && key == "min") {
        const auto n = want_int(1);
        if (!n) return false;
        s.min = static_cast<int>(*n);
      } else {
        error(line, toks[i].col, "parse-error",
              "unknown option `" + key + "` for " +
                  std::string(to_string(s.kind)),
              inject ? "inject options: after, count, for, side, delay, "
                       "copies, offset, batch"
                     : "expect options: within/for, dir, min");
        return false;
      }
    }
    return true;
  }

  std::string file_;
  std::vector<lint::Diagnostic>* diags_;
  int errors_ = 0;
};

}  // namespace

std::optional<Program> parse(const std::string& text, const std::string& file,
                             std::vector<lint::Diagnostic>* diags) {
  return Parser(file, diags).run(text);
}

std::optional<Program> load_file(const std::string& path,
                                 std::vector<lint::Diagnostic>* diags) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    diags->push_back({lint::Severity::kError, "parse-error", path, 0, 0,
                      "cannot read file", ""});
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str(), path, diags);
}

core::failure::Scripts compile(const Program& prog) {
  std::vector<core::scriptgen::Window> windows;
  for (std::size_t i = 0; i < prog.steps.size(); ++i) {
    const Step& s = prog.steps[i];
    if (s.kind != StepKind::kInject) continue;
    core::scriptgen::Window w;
    w.tag = "w" + std::to_string(i);
    w.type = s.pattern;
    w.kind = s.fault;
    w.start = s.at;
    w.end = s.window < 0 ? -1 : s.at + s.window;
    w.after = s.after;
    w.count = s.count;
    w.opts.delay = s.delay;
    w.opts.duplicate_copies = s.copies;
    w.opts.corrupt_offset = s.offset;
    w.opts.reorder_batch = s.batch;
    w.opts.on_send_side = s.on_send_side;
    windows.push_back(std::move(w));
  }
  core::failure::Scripts s = core::scriptgen::generate_windows(windows);
  // Observation prelude: every message through either filter leaves a
  // timestamped trace record — the timeline evaluate() reads. Dropped
  // messages are still observed (the log happens before the action), which
  // is exactly the paper's probing discipline: the PFI layer sees the wire,
  // not the protocol's opinion of it.
  s.send = "msg_log cur_msg\n" + s.send;
  s.receive = "msg_log cur_msg\n" + s.receive;
  return s;
}

namespace {

std::string step_label(const Step& s, sim::Duration end_of_run) {
  std::string label = to_string(s.kind);
  if (s.kind == StepKind::kInject) {
    label += " " + std::string(core::scriptgen::to_string(s.fault));
  }
  label += " " + s.pattern;
  label += " @" + fmt_s(s.at) + "s";
  if (s.kind != StepKind::kInject || s.window >= 0) {
    label += ".." + fmt_s(s.window_end(end_of_run)) + "s";
  }
  if (!s.dir.empty()) label += " dir " + s.dir;
  if (s.kind == StepKind::kExpect && s.min > 1) {
    label += " min " + std::to_string(s.min);
  }
  return label;
}

}  // namespace

Outcome evaluate(const Program& prog, const trace::TraceLog& log,
                 sim::Duration end_of_run) {
  Outcome out;
  for (std::size_t i = 0; i < prog.steps.size(); ++i) {
    const Step& s = prog.steps[i];
    StepResult sr;
    sr.line = s.line;
    sr.label = step_label(s, end_of_run);

    if (s.kind == StepKind::kInject) {
      // Attribution only: count this window's trace_note firings.
      const std::string note = "conform-" +
                               std::string(core::scriptgen::to_string(s.fault)) +
                               " w" + std::to_string(i);
      std::size_t fired = 0;
      for (const trace::Record& rec : log.records()) {
        if (rec.direction == "note" && rec.detail == note) ++fired;
      }
      sr.note = "fired " + std::to_string(fired);
      out.steps.push_back(std::move(sr));
      continue;
    }

    const sim::TimePoint t0 = s.at;
    const sim::TimePoint t1 = s.window_end(end_of_run);
    std::size_t matched = 0;
    std::optional<sim::TimePoint> first;
    for (const trace::Record& rec : log.records()) {
      if (rec.direction != "send" && rec.direction != "recv") continue;
      if (!s.dir.empty() && rec.direction != s.dir) continue;
      if (s.pattern != "*" && rec.type != s.pattern) continue;
      if (rec.at < t0 || rec.at > t1) continue;
      if (!first) first = rec.at;
      ++matched;
    }
    if (s.kind == StepKind::kExpect) {
      sr.pass = matched >= static_cast<std::size_t>(s.min);
      if (sr.pass) {
        sr.note = "first at " + fmt_s(*first) + "s (" +
                  std::to_string(matched) + " matched)";
      } else {
        sr.note = "only " + std::to_string(matched) + " of " +
                  std::to_string(s.min) + " in window";
      }
    } else {
      sr.pass = matched == 0;
      sr.note = sr.pass ? "none observed"
                        : "unexpected at " + fmt_s(*first) + "s (" +
                              std::to_string(matched) + " matched)";
    }
    if (!sr.pass) {
      out.pass = false;
      if (out.first_divergence.empty()) {
        out.first_divergence =
            "line " + std::to_string(s.line) + ": " + sr.label + ": " + sr.note;
      }
    }
    out.steps.push_back(std::move(sr));
  }
  return out;
}

std::string step_line(const StepResult& s) {
  std::string out = s.pass ? "ok   " : "FAIL ";
  out += s.label;
  if (!s.note.empty()) out += "  [" + s.note + "]";
  return out;
}

}  // namespace pfi::conformance
