// Declarative conformance scripts (.pdt): packetdrill for the PFI stack.
//
// Packetdrill-in-INET (PAPERS.md's lead related work) showed that a TCP
// conformance suite is best expressed as *data*: a timeline of timestamped
// `inject` / `expect` steps. A .pdt file declares that timeline plus the
// driver workload (`scenario`), and this module gives it three meanings:
//
//   parse()    — .pdt text -> Program, with positioned lint::Diagnostics
//                (the same Diagnostic type pfi_lint renders and sorts);
//   compile()  — Program -> PFI filter scripts: every `inject` becomes a
//                scriptgen fault window gated on simulated time, and both
//                filters get a `msg_log cur_msg` observation prelude so the
//                run leaves a complete packet timeline in the TraceLog
//                (the paper's "each packet was logged with a timestamp");
//   evaluate() — Program x TraceLog -> per-step pass/fail with the first
//                divergent step and its timestamp, packetdrill-style.
//
// The campaign runner runs a Program as one RunCell (oracle "conformance"),
// so a directory of .pdt files x the four TcpProfiles is a plan — the
// paper's Tables 1-4 as a portable suite (suites/tcp/, docs/CONFORMANCE.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "pfi/failure.hpp"
#include "pfi/scriptgen.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace pfi::conformance {

enum class StepKind { kInject, kExpect, kExpectNo };

const char* to_string(StepKind k);

/// One timestamped timeline step. `pattern` is a stub message type or "*".
struct Step {
  StepKind kind = StepKind::kExpect;
  sim::TimePoint at = 0;  // step start, absolute simulated time
  std::string pattern = "*";
  int line = 0;  // 1-based .pdt source line (diagnostics + attribution)

  // inject: fault shape (compiled via scriptgen::Window).
  core::scriptgen::FaultKind fault = core::scriptgen::FaultKind::kDrop;
  int after = 0;  // let N in-window matches through before faulting
  int count = 0;  // fault at most N (0 = every match)
  bool on_send_side = false;  // default receive: vendor -> x-Kernel, paper §4
  sim::Duration delay = sim::msec(1000);  // delay faults
  int copies = 1;                         // duplicate faults
  std::size_t offset = 0;                 // corrupt faults
  int batch = 3;                          // reorder faults

  // expect / expect-no: observation window and match constraints.
  sim::Duration window = -1;  // `within`/`for` span; < 0 = to end of run
  std::string dir;            // "send" | "recv" | "" (either)
  int min = 1;                // expect: minimum matching observations

  /// Window end as absolute time, clamped to `end_of_run`.
  [[nodiscard]] sim::TimePoint window_end(sim::Duration end_of_run) const;
};

/// A parsed .pdt file: header + timeline, in source order.
struct Program {
  std::string name;
  std::string protocol = "tcp";
  std::string scenario;  // "" = protocol default workload
  sim::Duration duration = sim::sec(60);
  std::uint64_t seed = 1;
  std::vector<Step> steps;
  std::string source_file;  // labels diagnostics; empty for inline text
};

/// Driver workloads a .pdt may select. The empty string (legacy default
/// shape, 512 B every 500 ms) is valid everywhere but not spellable in a
/// .pdt — scripts name an explicit shape.
const std::vector<std::string>& known_scenarios();

/// Parse .pdt text. Appends positioned diagnostics (rules: parse-error,
/// unknown-directive, bad-scenario); returns nullopt iff any are errors.
std::optional<Program> parse(const std::string& text,
                             const std::string& file,
                             std::vector<lint::Diagnostic>* diags);

/// Read + parse a .pdt file. A missing/unreadable file becomes a
/// file-level parse-error diagnostic.
std::optional<Program> load_file(const std::string& path,
                                 std::vector<lint::Diagnostic>* diags);

/// Compile the timeline's inject steps to installable filter scripts, with
/// a `msg_log cur_msg` observation prelude on both sides. Each inject's
/// trace_note tag is "w<step-index>", which evaluate() reads back for
/// fired-count attribution.
core::failure::Scripts compile(const Program& prog);

/// Verdict for one step after a run.
struct StepResult {
  int line = 0;
  bool pass = true;
  std::string label;  // "expect tcp-synack @0.000s..2.000s"
  std::string note;   // "first at 0.105s (3 matched)" / "none in window"
};

/// Whole-timeline verdict: pass iff every expect/expect-no step passed.
struct Outcome {
  bool pass = true;
  std::vector<StepResult> steps;  // one per Program step, in order
  std::string first_divergence;   // "" when pass
};

/// Check the observed packet timeline against the script. Observations are
/// the PFI layer's msg_log records (direction "send"/"recv"); inject steps
/// report how often their window fired (trace_note "conform-* w<i>") and
/// never fail by themselves.
Outcome evaluate(const Program& prog, const trace::TraceLog& log,
                 sim::Duration end_of_run);

/// "ok|FAIL  <label>  <note>" — the per-step line rendered into RunResult
/// steps, golden matrices and the pfi_conform table.
std::string step_line(const StepResult& s);

}  // namespace pfi::conformance
