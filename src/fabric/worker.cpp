#include "fabric/worker.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/executor.hpp"
#include "fabric/socket.hpp"
#include "fabric/wire.hpp"

namespace pfi::fabric {

namespace {

/// Blocking read of the next complete frame. False on EOF/error/corruption.
bool read_frame(int fd, FrameReader* reader, Frame* out) {
  for (;;) {
    if (reader->next(out)) return true;
    if (reader->corrupt()) return false;
    char buf[65536];
    const ssize_t n = recv(fd, buf, sizeof buf, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    reader->feed(buf, static_cast<std::size_t>(n));
  }
}

/// Heartbeats while the executor computes. The frame is pre-encoded and the
/// loop never allocates: the executor's --isolate path forks while this
/// thread runs, and a child must not inherit a held malloc lock.
class Heartbeat {
 public:
  Heartbeat(int fd, std::mutex* write_mu, int interval_ms)
      : fd_(fd),
        write_mu_(write_mu),
        interval_ms_(interval_ms < 50 ? 50 : interval_ms),
        frame_(encode_frame(FrameType::kHeartbeat, "")) {
    thread_ = std::thread([this] { loop(); });
  }
  ~Heartbeat() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

 private:
  void loop() {
    int slept = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
      // Sleep in short slices so shutdown never waits a full interval.
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
      slept += 25;
      if (slept < interval_ms_) continue;
      slept = 0;
      std::lock_guard<std::mutex> lock(*write_mu_);
      if (!send_all(fd_, frame_.data(), frame_.size())) return;
    }
  }

  int fd_;
  std::mutex* write_mu_;
  int interval_ms_;
  std::string frame_;  // pre-encoded: the loop must not allocate
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace

int run_worker(const WorkerOptions& opts) {
  std::string err;
  const int fd = dial(opts.connect, &err);
  if (fd < 0) {
    if (opts.on_log) opts.on_log(err);
    return 1;
  }

  FrameReader reader;
  Hello hello;
  hello.role = "worker";
  hello.name = opts.name.empty() ? "pid-" + std::to_string(getpid())
                                 : opts.name;
  const std::string hello_bytes =
      encode_frame(FrameType::kHello, encode_hello(hello));
  if (!send_all(fd, hello_bytes.data(), hello_bytes.size())) {
    close(fd);
    return 1;
  }
  Frame f;
  if (!read_frame(fd, &reader, &f)) {
    close(fd);
    return 1;
  }
  if (f.type == FrameType::kBye) {
    const std::string reason = decode_bye(f.payload);
    if (opts.on_log) opts.on_log("rejected: " + reason);
    close(fd);
    return reason.find("version mismatch") != std::string::npos ? 2 : 1;
  }
  Hello reply;
  if (f.type != FrameType::kHello || !decode_hello(f.payload, &reply)) {
    close(fd);
    return 1;
  }

  const int want =
      opts.lease_want > 0 ? opts.lease_want : std::max(2, 2 * opts.jobs);
  std::mutex write_mu;
  int rc = 1;  // pessimistic: overwritten by a graceful BYE
  {
    Heartbeat heartbeat(fd, &write_mu, opts.heartbeat_ms);
    auto send_frame = [&](const std::string& bytes) {
      std::lock_guard<std::mutex> lock(write_mu);
      return send_all(fd, bytes.data(), bytes.size());
    };

    if (!send_frame(encode_frame(FrameType::kLease,
                                 encode_lease_request(want)))) {
      close(fd);
      return 1;
    }

    for (;;) {
      if (!read_frame(fd, &reader, &f)) break;
      if (f.type == FrameType::kBye) {
        rc = 0;
        break;
      }
      if (f.type == FrameType::kHeartbeat) continue;
      if (f.type != FrameType::kLease) break;  // protocol violation

      std::vector<int> slots;
      std::vector<campaign::RunCell> cells;
      if (!decode_lease_grant(f.payload, &slots, &cells)) break;
      if (opts.on_log) {
        opts.on_log("lease: " + std::to_string(cells.size()) + " cell(s)");
      }

      // The executor returns results[i] == cells[i] and r.index keeps the
      // campaign-plan index; map it back to the coordinator's slot.
      std::map<int, int> slot_of_index;
      for (std::size_t i = 0; i < cells.size(); ++i) {
        slot_of_index[cells[i].index] = slots[i];
      }
      bool write_failed = false;
      campaign::ExecutorOptions eopts;
      eopts.jobs = opts.jobs;
      eopts.isolate = opts.isolate;
      eopts.retries = opts.retries;
      eopts.on_result = [&](const campaign::RunResult& r) {
        const auto it = slot_of_index.find(r.index);
        if (it == slot_of_index.end()) return;
        if (!send_frame(encode_frame(FrameType::kResult,
                                     encode_result(it->second, r)))) {
          write_failed = true;
        }
      };
      eopts.should_stop = [&] { return write_failed; };
      campaign::run_cells(cells, eopts);
      if (write_failed) break;

      if (!send_frame(encode_frame(FrameType::kLease,
                                   encode_lease_request(want)))) {
        break;
      }
    }
  }  // heartbeat joins before the fd closes
  close(fd);
  return rc;
}

bool spawn_local_workers(const WorkerOptions& base, int n, int close_fd,
                         LocalWorkerPool* pool, std::string* err) {
  for (int i = 0; i < n; ++i) {
    const pid_t pid = fork();
    if (pid < 0) {
      *err = std::string("fabric: fork failed: ") + std::strerror(errno);
      return false;
    }
    if (pid == 0) {
      if (close_fd >= 0) close(close_fd);
      WorkerOptions o = base;
      o.name = "local-" + std::to_string(i) + "-" + std::to_string(getpid());
      _exit(run_worker(o));
    }
    pool->pids.push_back(pid);
  }
  return true;
}

int reap_local_workers(LocalWorkerPool* pool, int grace_ms) {
  int killed = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(grace_ms);
  std::vector<pid_t> left = pool->pids;
  pool->pids.clear();
  while (!left.empty()) {
    for (std::size_t i = left.size(); i-- > 0;) {
      int status = 0;
      const pid_t r = waitpid(left[i], &status, WNOHANG);
      if (r == left[i] || (r < 0 && errno == ECHILD)) {
        left.erase(left.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
    if (left.empty()) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      for (const pid_t pid : left) {
        kill(pid, SIGKILL);
        ++killed;
        while (waitpid(pid, nullptr, 0) < 0 && errno == EINTR) {
        }
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return killed;
}

}  // namespace pfi::fabric
