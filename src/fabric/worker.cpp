#include "fabric/worker.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/executor.hpp"
#include "fabric/socket.hpp"
#include "fabric/wire.hpp"
#include "obs/metrics.hpp"

namespace pfi::fabric {

namespace {

/// Why read_frame gave up — so the flight recorder can tell an idle
/// timeout from a bounced heartbeat from a plain dead socket.
enum class ReadFail { kNone, kIo, kIdle, kHeartbeat };

/// Blocking read of the next complete frame, with a liveness bound: polls
/// in short slices so a silent partition (coordinator host gone without an
/// RST) surfaces after idle_timeout_ms — or the moment the heartbeat
/// thread reports a failed send — instead of blocking in recv() for TCP's
/// many-minute retransmission timeout. False on EOF/error/corruption/
/// timeout; the caller treats every false the same way (reconnect or die).
bool read_frame(int fd, FrameReader* reader, Frame* out, int idle_timeout_ms,
                const std::atomic<bool>* hb_failed = nullptr,
                ReadFail* why = nullptr) {
  if (why != nullptr) *why = ReadFail::kNone;
  int idle_ms = 0;
  for (;;) {
    if (reader->next(out)) return true;
    if (why != nullptr) *why = ReadFail::kIo;
    if (reader->corrupt()) return false;
    struct pollfd p = {fd, POLLIN, 0};
    const int pr = poll(&p, 1, 250);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (pr == 0) {
      if (hb_failed != nullptr &&
          hb_failed->load(std::memory_order_relaxed)) {
        if (why != nullptr) *why = ReadFail::kHeartbeat;
        return false;  // our own beats bounce: the link is gone
      }
      idle_ms += 250;
      if (idle_timeout_ms > 0 && idle_ms >= idle_timeout_ms) {
        if (why != nullptr) *why = ReadFail::kIdle;
        return false;
      }
      continue;
    }
    char buf[65536];
    const ssize_t n = recv(fd, buf, sizeof buf, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;
    }
    idle_ms = 0;
    reader->feed(buf, static_cast<std::size_t>(n));
  }
}

/// Capped exponential backoff: 100 ms doubling to a 2 s ceiling.
int backoff_ms(int attempt) {
  int ms = 100;
  for (int i = 1; i < attempt && ms < 2000; ++i) ms *= 2;
  return ms < 2000 ? ms : 2000;
}

/// Heartbeats while the executor computes. The frame is pre-encoded and the
/// loop never allocates: the executor's --isolate path forks while this
/// thread runs, and a child must not inherit a held malloc lock. The fd is
/// read through an atomic under the write lock — during a reconnect the
/// main thread parks it at -1 and the loop just skips beats. A failed send
/// raises *failed so the main thread's read loop (which may otherwise sit
/// in poll() with nothing arriving) starts its reconnect immediately.
class Heartbeat {
 public:
  Heartbeat(std::atomic<int>* fd, std::mutex* write_mu, int interval_ms,
            std::atomic<bool>* failed)
      : fd_(fd),
        write_mu_(write_mu),
        interval_ms_(interval_ms < 50 ? 50 : interval_ms),
        failed_(failed),
        frame_(encode_frame(FrameType::kHeartbeat, "")) {
    thread_ = std::thread([this] { loop(); });
  }
  ~Heartbeat() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

 private:
  void loop() {
    int slept = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
      // Sleep in short slices so shutdown never waits a full interval.
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
      slept += 25;
      if (slept < interval_ms_) continue;
      slept = 0;
      std::lock_guard<std::mutex> lock(*write_mu_);
      const int fd = fd_->load(std::memory_order_relaxed);
      if (fd < 0) continue;  // detached: a reconnect is in progress
      if (!send_all(fd, frame_.data(), frame_.size())) {
        failed_->store(true, std::memory_order_relaxed);
      }
    }
  }

  std::atomic<int>* fd_;
  std::mutex* write_mu_;
  int interval_ms_;
  std::atomic<bool>* failed_;
  std::string frame_;  // pre-encoded: the loop must not allocate
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// Send HELLO, read the reply. 0 = handshaken (and *worker_id holds the
/// coordinator-assigned id, *coord_version the coordinator's protocol
/// version — the link speaks the lower of the two), 1 = IO/protocol
/// failure, 2 = version rejected, 3 = auth rejected.
int handshake(int fd, const WorkerOptions& opts, FrameReader* reader,
              std::string* worker_id, int idle_timeout_ms,
              std::uint32_t* coord_version = nullptr) {
  Hello hello;
  hello.role = "worker";
  hello.name =
      opts.name.empty() ? "pid-" + std::to_string(getpid()) : opts.name;
  hello.token = opts.token;
  hello.id = *worker_id;
  const std::string bytes =
      encode_frame(FrameType::kHello, encode_hello(hello));
  if (!send_all(fd, bytes.data(), bytes.size())) return 1;
  Frame f;
  if (!read_frame(fd, reader, &f, idle_timeout_ms)) return 1;
  if (f.type == FrameType::kBye) {
    const std::string reason = decode_bye(f.payload);
    if (opts.on_log) opts.on_log("rejected: " + reason);
    if (reason.find("version mismatch") != std::string::npos) return 2;
    if (reason.find("auth failed") != std::string::npos) return 3;
    return 1;
  }
  Hello reply;
  if (f.type != FrameType::kHello || !decode_hello(f.payload, &reply)) {
    return 1;
  }
  if (!reply.id.empty()) *worker_id = reply.id;
  if (coord_version != nullptr) *coord_version = reply.version;
  return 0;
}

}  // namespace

int run_worker(const WorkerOptions& opts) {
  const int retries = opts.connect_retries < 0 ? 0 : opts.connect_retries;
  const int idle_timeout =
      opts.idle_timeout_ms > 0
          ? opts.idle_timeout_ms
          : std::max(5000, 10 * (opts.heartbeat_ms > 0 ? opts.heartbeat_ms
                                                       : 500));

  // Initial connect, with backoff: a worker started before its coordinator
  // should wait for it, not die.
  int fd = -1;
  for (int attempt = 1;; ++attempt) {
    std::string err;
    fd = dial(opts.connect, &err);
    if (fd >= 0) break;
    if (attempt > retries) {
      if (opts.on_log) opts.on_log(err);
      return 1;
    }
    const int wait = backoff_ms(attempt);
    if (opts.on_log) {
      opts.on_log(err + " (attempt " + std::to_string(attempt) + "/" +
                  std::to_string(retries + 1) + ", retrying in " +
                  std::to_string(wait) + " ms)");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(wait));
  }

  if (opts.flight) opts.flight->record(FlightEvent::kConnect);
  FrameReader reader;
  std::string worker_id;
  std::uint32_t coord_version = 0;
  {
    const int hs = handshake(fd, opts, &reader, &worker_id, idle_timeout,
                             &coord_version);
    if (hs != 0) {
      close(fd);
      return hs;
    }
  }
  if (opts.flight) opts.flight->record(FlightEvent::kJoin, worker_id);

  // Stage-level profiling: one private registry for this worker process,
  // shipped to the coordinator as cumulative STATS snapshots. Instruments
  // are created here, before any other thread exists; afterwards every
  // update goes through these stable pointers (executor callbacks update
  // under write_mu, the main thread only touches the registry between
  // batches), so the not-thread-safe Registry is never raced.
  obs::Registry reg;
  obs::Histogram* lease_rtt = &reg.histogram("fabric.worker.lease_rtt_us");
  obs::Histogram* execute_us = &reg.histogram("fabric.worker.execute_us");
  obs::Histogram* serialize_us = &reg.histogram("fabric.worker.serialize_us");
  obs::Counter* leases_taken = &reg.counter("fabric.worker.leases");
  obs::Counter* cells_executed = &reg.counter("fabric.worker.cells_executed");
  obs::Counter* reconnects = &reg.counter("fabric.worker.reconnects");
  obs::Counter* results_resent = &reg.counter("fabric.worker.results_resent");
  using SClock = std::chrono::steady_clock;
  const auto us_between = [](SClock::time_point a, SClock::time_point b) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
  };

  const int want =
      opts.lease_want > 0 ? opts.lease_want : std::max(2, 2 * opts.jobs);
  const std::string lease_req =
      encode_frame(FrameType::kLease, encode_lease_request(want));
  std::mutex write_mu;
  std::atomic<int> live_fd{fd};
  /// Encoded RESULT frames sent since the last grant on this connection.
  /// A new grant implies the coordinator read everything before our LEASE
  /// request (TCP ordering), so these are cleared then; on a reconnect the
  /// whole set is re-sent and the coordinator dedupes.
  std::vector<std::string> unacked;
  std::atomic<bool> hb_failed{false};
  int rc = 1;  // pessimistic: overwritten by a graceful BYE
  {
    Heartbeat heartbeat(&live_fd, &write_mu, opts.heartbeat_ms, &hb_failed);
    auto send_locked = [&](const std::string& bytes) {
      std::lock_guard<std::mutex> lock(write_mu);
      return send_all(fd, bytes.data(), bytes.size());
    };

    /// Ship a cumulative registry snapshot. Main thread only — the encode
    /// allocates, which the (forking) executor and the heartbeat thread
    /// must never do. Only flows on a v3+ link; a failed send is left for
    /// the next read to notice (STATS is a side channel, never worth a
    /// reconnect of its own).
    auto send_stats = [&] {
      if (!opts.ship_stats || coord_version < 3) return;
      const std::string bytes =
          encode_frame(FrameType::kStats, encode_stats(reg.snapshot()));
      if (send_locked(bytes) && opts.flight) {
        opts.flight->record(FlightEvent::kStats, worker_id);
      }
    };

    /// Dial + handshake (presenting our stable id) + re-send unacked +
    /// park a fresh lease request. 0 = back in business, else exit code.
    auto reconnect = [&]() -> int {
      if (opts.flight) opts.flight->record(FlightEvent::kDetach, worker_id);
      {
        std::lock_guard<std::mutex> lock(write_mu);
        live_fd.store(-1, std::memory_order_relaxed);
        if (fd >= 0) close(fd);
        fd = -1;
      }
      for (int attempt = 1; attempt <= retries + 1; ++attempt) {
        const int wait = backoff_ms(attempt);
        if (opts.on_log) {
          opts.on_log("link lost; reconnect attempt " +
                      std::to_string(attempt) + "/" +
                      std::to_string(retries + 1) + " in " +
                      std::to_string(wait) + " ms");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(wait));
        std::string err;
        const int nfd = dial(opts.connect, &err);
        if (nfd < 0) continue;
        FrameReader fresh;
        std::string id = worker_id;
        std::uint32_t cv = coord_version;
        const int hs = handshake(nfd, opts, &fresh, &id, idle_timeout, &cv);
        if (hs == 2 || hs == 3) {
          close(nfd);
          return hs;  // deliberate rejection: no point retrying
        }
        if (hs != 0) {
          close(nfd);
          continue;
        }
        bool ok = true;
        for (const std::string& b : unacked) {
          if (!send_all(nfd, b.data(), b.size())) {
            ok = false;
            break;
          }
        }
        if (ok) ok = send_all(nfd, lease_req.data(), lease_req.size());
        if (!ok) {
          close(nfd);
          continue;
        }
        std::lock_guard<std::mutex> lock(write_mu);
        fd = nfd;
        reader = std::move(fresh);
        worker_id = id;
        coord_version = cv;
        reconnects->inc();
        results_resent->inc(unacked.size());
        hb_failed.store(false, std::memory_order_relaxed);
        live_fd.store(fd, std::memory_order_relaxed);
        if (opts.flight) {
          opts.flight->record(FlightEvent::kReattach, worker_id);
        }
        if (opts.on_log) {
          opts.on_log("reconnected as " + worker_id + " (" +
                      std::to_string(unacked.size()) +
                      " result(s) re-sent)");
        }
        return 0;
      }
      return 1;
    };

    auto lease_req_at = SClock::now();
    if (!send_locked(lease_req)) {
      const int r = reconnect();
      if (r != 0) {
        if (fd >= 0) close(fd);
        return r;
      }
      lease_req_at = SClock::now();
    }

    for (;;) {
      Frame f;
      ReadFail why = ReadFail::kNone;
      if (!read_frame(fd, &reader, &f, idle_timeout, &hb_failed, &why)) {
        if (opts.flight && why == ReadFail::kIdle) {
          opts.flight->record(FlightEvent::kIdleTimeout, worker_id);
        } else if (opts.flight && why == ReadFail::kHeartbeat) {
          opts.flight->record(FlightEvent::kHeartbeatMiss, worker_id);
        }
        const int r = reconnect();
        if (r != 0) {
          rc = r;
          break;
        }
        lease_req_at = SClock::now();
        continue;
      }
      if (f.type == FrameType::kBye) {
        if (opts.flight) opts.flight->record(FlightEvent::kBye, worker_id);
        rc = 0;
        break;
      }
      if (f.type == FrameType::kHeartbeat) continue;
      if (f.type != FrameType::kLease) {
        if (static_cast<std::uint8_t>(f.type) <= kMaxReservedFrameType) {
          continue;  // a newer coordinator's frame: ignore, keep the link
        }
        break;  // protocol violation
      }

      int job = 0;
      std::vector<int> slots;
      std::vector<std::int64_t> epochs;
      std::vector<campaign::RunCell> cells;
      if (!decode_lease_grant(f.payload, &job, &slots, &epochs, &cells)) {
        break;
      }
      lease_rtt->observe(us_between(lease_req_at, SClock::now()));
      leases_taken->inc();
      if (opts.flight) {
        opts.flight->record(FlightEvent::kLeaseGrant, worker_id, job,
                            slots.empty() ? -1 : slots.front(),
                            epochs.empty() ? 0 : epochs.front());
      }
      {
        // The grant arrived after our RESULT + LEASE sends on this
        // connection, so everything previously sent was delivered.
        std::lock_guard<std::mutex> lock(write_mu);
        unacked.clear();
      }
      // Post-grant snapshot: the coordinator is provably alive and reading
      // right now, so this is the reliable delivery point for cumulative
      // stats (the post-batch one below can race campaign shutdown).
      send_stats();
      if (opts.on_log) {
        opts.on_log("lease: job " + std::to_string(job) + ", " +
                    std::to_string(cells.size()) + " cell(s)");
      }

      // The executor returns results[i] == cells[i] and r.index keeps the
      // campaign-plan index; map it back to this grant's slot + epoch.
      std::map<int, std::size_t> pos_of_index;
      for (std::size_t i = 0; i < cells.size(); ++i) {
        pos_of_index[cells[i].index] = i;
      }
      std::atomic<bool> link_ok{true};
      // Completion-to-completion execute timing: exact when the executor
      // runs one cell at a time (jobs=1), an arrival-spacing approximation
      // above that. last_done is only touched under write_mu.
      auto last_done = SClock::now();
      campaign::ExecutorOptions eopts;
      eopts.jobs = opts.jobs;
      eopts.isolate = opts.isolate;
      eopts.retries = opts.retries;
      eopts.on_result = [&](const campaign::RunResult& r) {
        const auto it = pos_of_index.find(r.index);
        if (it == pos_of_index.end()) return;
        const std::size_t k = it->second;
        const auto t0 = SClock::now();
        std::string bytes = encode_frame(
            FrameType::kResult, encode_result(job, slots[k], epochs[k], r));
        const auto t1 = SClock::now();
        std::lock_guard<std::mutex> lock(write_mu);
        serialize_us->observe(us_between(t0, t1));
        execute_us->observe(us_between(last_done, t1));
        last_done = t1;
        cells_executed->inc();
        if (opts.flight) {
          opts.flight->record(FlightEvent::kResult, worker_id, job, slots[k],
                              epochs[k]);
        }
        unacked.push_back(std::move(bytes));
        // A failed send is a dropped link, not a reason to stop computing:
        // the batch finishes and re-submits after the reconnect.
        if (link_ok.load(std::memory_order_relaxed) &&
            !send_all(fd, unacked.back().data(), unacked.back().size())) {
          link_ok.store(false, std::memory_order_relaxed);
        }
      };
      campaign::run_cells(cells, eopts);

      // Final snapshot for this batch, then the next lease request — the
      // coordinator reads them in order, so by the time it grants (or
      // finishes the campaign and drains), the stats are current.
      if (link_ok.load(std::memory_order_relaxed)) send_stats();
      const bool need_reconnect =
          !link_ok.load(std::memory_order_relaxed) ||
          !send_locked(lease_req);
      if (need_reconnect) {
        const int r = reconnect();
        if (r != 0) {
          rc = r;
          break;
        }
      }
      lease_req_at = SClock::now();
    }
  }  // heartbeat joins before the fd closes
  if (fd >= 0) close(fd);
  return rc;
}

bool spawn_local_workers(const WorkerOptions& base, int n, int close_fd,
                         LocalWorkerPool* pool, std::string* err) {
  for (int i = 0; i < n; ++i) {
    const pid_t pid = fork();
    if (pid < 0) {
      *err = std::string("fabric: fork failed: ") + std::strerror(errno);
      return false;
    }
    if (pid == 0) {
      if (close_fd >= 0) close(close_fd);
      WorkerOptions o = base;
      o.name = "local-" + std::to_string(i) + "-" + std::to_string(getpid());
      _exit(run_worker(o));
    }
    pool->pids.push_back(pid);
  }
  return true;
}

int reap_local_workers(LocalWorkerPool* pool, int grace_ms) {
  int killed = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(grace_ms);
  std::vector<pid_t> left = pool->pids;
  pool->pids.clear();
  while (!left.empty()) {
    for (std::size_t i = left.size(); i-- > 0;) {
      int status = 0;
      const pid_t r = waitpid(left[i], &status, WNOHANG);
      if (r == left[i] || (r < 0 && errno == ECHILD)) {
        left.erase(left.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
    if (left.empty()) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      for (const pid_t pid : left) {
        kill(pid, SIGKILL);
        ++killed;
        while (waitpid(pid, nullptr, 0) < 0 && errno == EINTR) {
        }
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return killed;
}

}  // namespace pfi::fabric
