// Worker process: pulls cell leases from a coordinator, executes them
// through the campaign executor (so --jobs, --isolate, retries and the
// per-cell watchdog all still apply *inside* the worker), and streams each
// result back the moment it finishes. A heartbeat thread keeps the
// coordinator's dead-worker detector quiet while a long cell computes.
//
// Losing the link is not fatal: the worker keeps computing its lease,
// remembers every encoded RESULT it has sent since the last grant (a new
// grant on the same connection proves delivery — TCP ordering), and
// reconnects with capped exponential backoff presenting the stable worker
// id the coordinator assigned in HELLO. After the handshake it re-sends
// the unacknowledged results (the coordinator dedupes by job/slot/epoch)
// and parks a fresh lease request — the campaign's bytes never notice.
//
// Fork-safety: the heartbeat thread sends a pre-encoded frame and never
// allocates, so the executor's --isolate path (which forks children while
// the heartbeat thread runs) cannot inherit a held malloc lock.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include <sys/types.h>

#include "fabric/flight.hpp"

namespace pfi::fabric {

struct WorkerOptions {
  std::string connect;   // "HOST:PORT" or "unix:PATH"
  int jobs = 1;          // executor threads / child processes per lease
  bool isolate = false;  // fork-sandbox each cell inside the worker
  int retries = 0;       // executor retry policy for errored cells
  /// Cells requested per lease; 0 = auto (2 * jobs, min 2), enough to
  /// overlap computing with the next round trip.
  int lease_want = 0;
  int heartbeat_ms = 500;
  /// Declare the link dead and reconnect when nothing arrives for this
  /// long (the coordinator beats parked workers every ~500 ms, so a
  /// healthy link is never silent). Bounds the hang a silent partition —
  /// coordinator host gone without an RST — would otherwise stretch to
  /// TCP's many-minute retransmission timeout while finished results sit
  /// undelivered. <= 0 = auto: max(5000, 10 * heartbeat_ms).
  int idle_timeout_ms = 0;
  /// Connect attempts (initial and per reconnect) beyond the first, with
  /// capped exponential backoff (100 ms doubling to 2 s) between them.
  int connect_retries = 5;
  /// Shared secret presented in HELLO ("" = none).
  std::string token;
  std::string name;      // diagnostic label sent in HELLO
  std::function<void(const std::string&)> on_log;
  /// Ship cumulative obs::Registry snapshots (stage histograms, lease/cell
  /// counters) as STATS frames after each grant and each finished batch.
  /// Only flows when the coordinator negotiated wire v3+; encoded on the
  /// main thread (the heartbeat thread stays pre-encoded and
  /// allocation-free).
  bool ship_stats = true;
  /// Optional flight recorder for this worker's own control-plane view
  /// (connects, grants, results, detaches, reattaches, idle timeouts).
  /// Side channel only; `pfi_worker --flight-out` dumps it at exit.
  FlightRecorder* flight = nullptr;
};

/// Connect, handshake, and serve leases until the coordinator says BYE.
/// Returns 0 on a graceful BYE, 1 on a connect/protocol/socket failure,
/// 2 when the coordinator rejected our protocol version, 3 when it
/// rejected our token.
int run_worker(const WorkerOptions& opts);

/// Auto-spawned local workers (`pfi_campaign --workers N`): each is a
/// fork()ed child running run_worker() and _exit()ing. Must be called
/// while the parent is still single-threaded.
struct LocalWorkerPool {
  std::vector<pid_t> pids;
};

/// Fork `n` workers dialing `base.connect`. `close_fd` (the parent's
/// listening socket, usually) is closed in each child so a dead parent
/// can't leak the bound address. False + *err on fork failure.
bool spawn_local_workers(const WorkerOptions& base, int n, int close_fd,
                         LocalWorkerPool* pool, std::string* err);

/// Reap every spawned worker: up to `grace_ms` of WNOHANG polling for a
/// voluntary exit (they exit on BYE), then SIGKILL + blocking reap.
/// Returns the number that had to be killed.
int reap_local_workers(LocalWorkerPool* pool, int grace_ms = 5000);

}  // namespace pfi::fabric
