// Thin POSIX socket layer for the campaign fabric.
//
// Addresses are strings: "HOST:PORT" (TCP; HOST may be a dotted quad or a
// name) or "unix:/path/to.sock" (AF_UNIX). A Listener bound to port 0
// reports the kernel-chosen port through address() — that is how
// `pfi_campaign --workers N` hands auto-spawned workers a rendezvous
// without configuration. All sends use MSG_NOSIGNAL so a worker dying
// mid-write surfaces as an error return, never SIGPIPE.
#pragma once

#include <string>

namespace pfi::fabric {

/// Listening socket (TCP loopback/any, or unix-domain). Move-only.
class Listener {
 public:
  Listener() = default;
  ~Listener() { close_(); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  Listener(Listener&& o) noexcept { *this = static_cast<Listener&&>(o); }
  Listener& operator=(Listener&& o) noexcept {
    if (this != &o) {
      close_();
      fd_ = o.fd_;
      addr_ = o.addr_;
      unix_path_ = o.unix_path_;
      o.fd_ = -1;
      o.unix_path_.clear();
    }
    return *this;
  }

  /// Bind + listen on `address` ("HOST:PORT", port 0 = ephemeral, or
  /// "unix:PATH"; an existing socket file at PATH is replaced). Returns
  /// false with *err set on failure.
  bool open(const std::string& address, std::string* err);

  /// Accept one pending connection (the caller polled readability), or -1.
  /// When `peer` is non-null it receives the peer's address: the dotted
  /// quad for TCP ("10.0.0.7") or "unix" for AF_UNIX — the Engine's
  /// allowlist matches against exactly this string.
  [[nodiscard]] int accept_one(std::string* peer = nullptr) const;

  [[nodiscard]] int fd() const { return fd_; }
  /// The concrete bound address ("127.0.0.1:41523" once the kernel picked
  /// the port) — dial this.
  [[nodiscard]] const std::string& address() const { return addr_; }

 private:
  void close_();

  int fd_ = -1;
  std::string addr_;
  std::string unix_path_;  // unlinked on close
};

/// Blocking connect to "HOST:PORT" or "unix:PATH". Returns the fd, or -1
/// with *err set.
int dial(const std::string& address, std::string* err);

/// Write all of `data` (MSG_NOSIGNAL, EINTR-retrying). False on error.
bool send_all(int fd, const void* data, std::size_t n);

}  // namespace pfi::fabric
