// The fabric wire format: length-prefixed frames over a stream socket.
//
// Every message is one frame:
//
//   uint32 length   (big endian; length = 1 + payload size)
//   uint8  type     (FrameType)
//   bytes  payload  (kv entries, see kv.hpp)
//
// The conversation (docs/FABRIC.md has the full state machine):
//
//   worker -> coordinator   HELLO {v, role=worker, name, token?, id?}
//                           `token` authenticates (shared secret, checked
//                           in constant time); `id` is the stable worker id
//                           a reconnecting worker presents to resume its
//                           leases
//   coordinator -> worker   HELLO {v, role=coordinator, id}  (or BYE on a
//                           version/auth mismatch — negotiation is "exact
//                           match or go away"; the BYE reason names the
//                           version the coordinator expected)
//   worker -> coordinator   LEASE {want=N}        pull-based work stealing:
//                           an idle worker asks; the coordinator parks the
//                           request until cells exist, so a fast worker
//                           drains the queue and a late joiner still gets
//                           the next requeued batch
//   coordinator -> worker   LEASE {job, n, slot+epoch+cell ...}  all cells
//                           of one grant belong to one job; every slot is
//                           stamped with a fresh lease epoch
//   worker -> coordinator   RESULT {job, slot, epoch, res}  one per cell,
//                           streamed as the executor completes them; after
//                           a reconnect the whole batch is re-sent and the
//                           coordinator dedupes by (job, slot, epoch)
//   worker -> coordinator   HEARTBEAT {}          liveness while computing
//   either direction        BYE {reason}          graceful close; from the
//                           coordinator it means "campaign finished" (or
//                           on a client/daemon socket, "job rejected")
//
// The daemon speaks the same framing with four more types on client
// connections: SUBMIT (a campaign/search spec + overrides, including a
// per-job worker quota and the content keys the client already holds),
// PROGRESS (JSON lines), ARTIFACT (named output documents — either a
// complete final document, or an incremental chunk keyed by content hash
// so journal lines stream to the client *during* the run) and DONE (job
// summary).
//
// v3 adds the fleet observability plane (docs/OBSERVABILITY.md):
//
//   worker -> coordinator   STATS {n, s...}  a cumulative obs::Registry
//                           snapshot of the worker process, shipped from
//                           the worker's main thread (never the
//                           pre-encoded heartbeat thread) so the
//                           coordinator can fold fleet-wide metrics
//   client -> daemon        STATUS {}        status request; the daemon
//                           replies with a STATUS frame carrying one JSON
//                           document (queue depth, jobs, per-worker state)
//
// and relaxes two v2 rules so mixed fleets degrade instead of dying:
// HELLO version negotiation accepts [kMinProtocolVersion,
// kProtocolVersion] (the connection speaks the lower of the two), and a
// well-framed but unknown frame type in the reserved window is ignored
// with a counter bump instead of corrupting the stream — a v2 peer that
// never sends STATS, or a v4 peer that sends something newer, keeps its
// link either way.
//
// Cells and results travel as kv payloads; RunResult reuses the fork
// sandbox's exact serialisation (campaign/sandbox.hpp wire_encode), so a
// record that crossed the fabric is byte-identical to one computed
// in-process — the whole "merging distributed results is a dedupe and a
// sort" story rests on that.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "obs/metrics.hpp"

namespace pfi::fabric {

/// Bumped on any incompatible change to frames or payloads (v2 added auth
/// tokens, worker ids, lease epochs, job-scoped leases, artifact chunks;
/// v3 added STATS/STATUS and ranged negotiation). A listener accepts any
/// HELLO version in [kMinProtocolVersion, kProtocolVersion] and the
/// connection speaks the lower of the two — v3-only frames simply never
/// flow on a v2 link. Anything older earns a BYE naming both versions.
constexpr std::uint32_t kProtocolVersion = 3;
constexpr std::uint32_t kMinProtocolVersion = 2;

/// Frames above this are garbage (or an attack), not campaigns.
constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/// Until a connection completes HELLO, this is all a frame may claim: a
/// handshake is a few short kv entries, and an unauthenticated peer must
/// not be able to park a 64 MB buffer allocation per connection.
constexpr std::uint32_t kMaxHelloPayload = 4096;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kLease = 2,
  kResult = 3,
  kHeartbeat = 4,
  kBye = 5,
  // Daemon (client connections) only:
  kSubmit = 6,
  kProgress = 7,
  kArtifact = 8,
  kDone = 9,
  // v3 observability plane:
  kStats = 10,   // worker -> coordinator: cumulative metrics snapshot
  kStatus = 11,  // client -> daemon: empty request; reply carries JSON
};

/// Frame types in (kStatus, kMaxReservedFrameType] parse as well-formed
/// frames that the current code ignores (with a FabricStats counter) — the
/// forward-compatibility window for future protocol versions. Types above
/// it are garbage and mark the stream corrupt, as an impossible length
/// does.
constexpr std::uint8_t kMaxReservedFrameType = 31;

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::string payload;
};

/// Serialise one frame (header + payload).
std::string encode_frame(FrameType type, std::string_view payload);

/// Incremental frame parser: feed() whatever recv() produced — any split,
/// down to one byte at a time — and pop complete frames with next().
class FrameReader {
 public:
  void feed(const char* data, std::size_t n) { buf_.append(data, n); }

  /// Extract the next complete frame. False = need more bytes (or the
  /// stream is corrupt; check corrupt()).
  bool next(Frame* out);

  /// An impossible length or unknown type was seen; the connection is
  /// unusable and should be closed.
  [[nodiscard]] bool corrupt() const { return corrupt_; }

  /// Tighten (or restore) the per-frame payload ceiling. The coordinator
  /// caps pre-handshake connections at kMaxHelloPayload and lifts the cap
  /// to kMaxFramePayload once HELLO succeeds; the check fires on the 4
  /// header bytes, before any payload accumulates.
  void set_max_payload(std::uint32_t n) { max_payload_ = n; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted lazily
  std::uint32_t max_payload_ = kMaxFramePayload;
  bool corrupt_ = false;
};

// --- handshake -------------------------------------------------------------

struct Hello {
  std::uint32_t version = kProtocolVersion;
  std::string role;   // "worker" | "client" | "coordinator"
  std::string name;   // diagnostic label (worker pid, client id)
  std::string token;  // shared secret; compared in constant time
  std::string id;     // worker: stable id when reconnecting ("" = new);
                      // coordinator reply: the id the worker must keep
};

std::string encode_hello(const Hello& h);
bool decode_hello(std::string_view payload, Hello* out);

/// Constant-time token equality (length still leaks; contents do not).
bool tokens_equal(std::string_view a, std::string_view b);

// --- leases ----------------------------------------------------------------

/// Worker -> coordinator: "I can take up to `want` cells."
std::string encode_lease_request(int want);
bool decode_lease_request(std::string_view payload, int* want);

/// Coordinator -> worker: a batch of (slot, epoch, cell), all belonging to
/// one `job`. Slots are coordinator bookkeeping (position in the job's
/// dispatch queue); the epoch stamps this particular grant of the slot so
/// re-sent results after a reconnect dedupe exactly. Both are echoed back
/// in RESULT frames; cell.index keeps its campaign-plan meaning untouched.
std::string encode_lease_grant(int job, const std::vector<int>& slots,
                               const std::vector<std::int64_t>& epochs,
                               const std::vector<campaign::RunCell>& cells);
bool decode_lease_grant(std::string_view payload, int* job,
                        std::vector<int>* slots,
                        std::vector<std::int64_t>* epochs,
                        std::vector<campaign::RunCell>* cells);

// --- cells and results -----------------------------------------------------

/// Exact kv serialisation of a RunCell, schedule events included.
std::string encode_cell(const campaign::RunCell& cell);
bool decode_cell(std::string_view payload, campaign::RunCell* out);

/// RESULT payload: the job, dispatch slot and lease epoch the cell was
/// granted under, plus the sandbox wire bytes of the result.
std::string encode_result(int job, int slot, std::int64_t epoch,
                          const campaign::RunResult& r);
bool decode_result(std::string_view payload, int* job, int* slot,
                   std::int64_t* epoch, campaign::RunResult* out);

// --- stats (v3) ------------------------------------------------------------

/// A STATS payload refuses more samples than this: a metrics snapshot is a
/// few hundred entries, not a data channel. Decoders reject anything
/// larger; the sender never produces it (the registry is bounded by the
/// instruments the code declares).
constexpr std::size_t kMaxStatsSamples = 4096;

/// Worker -> coordinator: a *cumulative* obs::Registry snapshot of the
/// worker process. Cumulative so the frame is idempotent — the coordinator
/// replaces (never adds) the sender's previous snapshot, and a lost or
/// duplicated STATS costs freshness, not correctness. Encoded and sent from
/// the worker's main thread only; the heartbeat thread stays pre-encoded
/// and allocation-free.
std::string encode_stats(const std::vector<obs::MetricSample>& samples);
bool decode_stats(std::string_view payload,
                  std::vector<obs::MetricSample>* out);

// STATUS needs no codec of its own: the request is an empty-payload kStatus
// frame, and the reply is a kStatus frame carrying one JSON document via
// encode_json_line/decode_json_line below.

// --- bye -------------------------------------------------------------------

std::string encode_bye(std::string_view reason);
std::string decode_bye(std::string_view payload);  // reason ("" = graceful)

// --- daemon: submit / progress / artifact / done ---------------------------

/// A job submission: the spec *text* (the daemon parses and plans; the
/// client stays dumb) plus the CLI's override knobs.
struct Submit {
  std::string spec_text;
  std::string filter;
  int timeout_ms = -1;       // -1 = keep the spec's value
  std::int64_t max_events = -1;
  int retries = -1;
  int explore = 0;           // > 0: coverage-guided search with this budget
  int max_workers = 0;       // > 0: cap on workers leasing this job at once
  /// Content keys (campaign/journal.hpp cell_key) the client already holds
  /// a record for — a resubmitting client's resume set. The daemon skips
  /// matching cells; their records never re-execute or re-transfer.
  std::vector<std::string> have;
};

std::string encode_submit(const Submit& s);
bool decode_submit(std::string_view payload, Submit* out);

/// PROGRESS and DONE carry one JSON document; ARTIFACT carries a named one.
std::string encode_json_line(FrameType type, std::string_view json);
std::string decode_json_line(std::string_view payload);

/// A complete artifact (`chunk` empty) or one incremental chunk of a
/// streaming artifact, keyed by the content hash of the record it carries —
/// journal lines flow to the client as they are produced, and a client that
/// died mid-stream resubmits with Submit.have to resume from what it kept.
std::string encode_artifact(std::string_view name, std::string_view bytes,
                            std::string_view chunk = {});
bool decode_artifact(std::string_view payload, std::string* name,
                     std::string* bytes, std::string* chunk = nullptr);

}  // namespace pfi::fabric
