#include "fabric/socket.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace pfi::fabric {

namespace {

constexpr const char* kUnixPrefix = "unix:";

bool is_unix(const std::string& address) {
  return address.rfind(kUnixPrefix, 0) == 0;
}

bool split_host_port(const std::string& address, std::string* host,
                     std::string* port) {
  const auto colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    return false;
  }
  *host = address.substr(0, colon);
  *port = address.substr(colon + 1);
  return true;
}

/// Frames are small and latency-bound (a lease round trip gates a worker's
/// next batch): Nagle + delayed ACK would add ~40 ms stalls per exchange.
/// Harmlessly fails on AF_UNIX sockets.
void set_nodelay(int fd) {
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

bool fill_unix_addr(const std::string& path, sockaddr_un* sa,
                    std::string* err) {
  if (path.empty() || path.size() >= sizeof sa->sun_path) {
    *err = "fabric: unix socket path too long: " + path;
    return false;
  }
  std::memset(sa, 0, sizeof *sa);
  sa->sun_family = AF_UNIX;
  std::memcpy(sa->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

bool Listener::open(const std::string& address, std::string* err) {
  close_();
  if (is_unix(address)) {
    const std::string path = address.substr(std::strlen(kUnixPrefix));
    sockaddr_un sa;
    if (!fill_unix_addr(path, &sa, err)) return false;
    fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      *err = std::string("fabric: socket: ") + std::strerror(errno);
      return false;
    }
    unlink(path.c_str());  // a stale socket file from a dead daemon
    if (bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0 ||
        listen(fd_, 64) != 0) {
      *err = "fabric: cannot listen on " + address + ": " +
             std::strerror(errno);
      close_();
      return false;
    }
    unix_path_ = path;
    addr_ = address;
    return true;
  }

  std::string host, port;
  if (!split_host_port(address, &host, &port)) {
    *err = "fabric: bad address (want HOST:PORT or unix:PATH): " + address;
    return false;
  }
  sockaddr_in sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(std::atoi(port.c_str())));
  if (inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    *err = "fabric: bad listen host (want a dotted quad): " + host;
    return false;
  }
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *err = std::string("fabric: socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0 ||
      listen(fd_, 64) != 0) {
    *err = "fabric: cannot listen on " + address + ": " +
           std::strerror(errno);
    close_();
    return false;
  }
  // Report the kernel-chosen port (bind to :0 for an ephemeral one).
  sockaddr_in bound;
  socklen_t len = sizeof bound;
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s:%u", host.c_str(),
                  static_cast<unsigned>(ntohs(bound.sin_port)));
    addr_ = buf;
  } else {
    addr_ = address;
  }
  return true;
}

int Listener::accept_one(std::string* peer) const {
  if (fd_ < 0) return -1;
  for (;;) {
    sockaddr_storage ss;
    socklen_t len = sizeof ss;
    const int c = accept(fd_, reinterpret_cast<sockaddr*>(&ss), &len);
    if (c >= 0) {
      set_nodelay(c);
      if (peer != nullptr) {
        if (ss.ss_family == AF_INET) {
          char buf[INET_ADDRSTRLEN] = {0};
          const auto* sin = reinterpret_cast<const sockaddr_in*>(&ss);
          inet_ntop(AF_INET, &sin->sin_addr, buf, sizeof buf);
          *peer = buf;
        } else {
          *peer = "unix";
        }
      }
      return c;
    }
    if (errno == EINTR) continue;
    return -1;
  }
}

void Listener::close_() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  if (!unix_path_.empty()) {
    unlink(unix_path_.c_str());
    unix_path_.clear();
  }
  addr_.clear();
}

int dial(const std::string& address, std::string* err) {
  if (is_unix(address)) {
    const std::string path = address.substr(std::strlen(kUnixPrefix));
    sockaddr_un sa;
    if (!fill_unix_addr(path, &sa, err)) return -1;
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      *err = std::string("fabric: socket: ") + std::strerror(errno);
      return -1;
    }
    if (connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
      *err = "fabric: cannot connect to " + address + ": " +
             std::strerror(errno);
      close(fd);
      return -1;
    }
    return fd;
  }  // AF_UNIX: no Nagle to disable

  std::string host, port;
  if (!split_host_port(address, &host, &port)) {
    *err = "fabric: bad address (want HOST:PORT or unix:PATH): " + address;
    return -1;
  }
  addrinfo hints;
  std::memset(&hints, 0, sizeof hints);
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0 || res == nullptr) {
    *err = "fabric: cannot resolve " + address + ": " + gai_strerror(rc);
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    close(fd);
    fd = -1;
  }
  freeaddrinfo(res);
  if (fd < 0) {
    *err = "fabric: cannot connect to " + address + ": " +
           std::strerror(errno);
    return fd;
  }
  set_nodelay(fd);
  return fd;
}

bool send_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = send(fd, p + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace pfi::fabric
