#include "fabric/flight.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "campaign/json.hpp"

namespace pfi::fabric {

const char* flight_event_name(FlightEvent e) {
  switch (e) {
    case FlightEvent::kConnect: return "connect";
    case FlightEvent::kAddrReject: return "addr-reject";
    case FlightEvent::kVersionReject: return "version-reject";
    case FlightEvent::kAuthReject: return "auth-reject";
    case FlightEvent::kHandshakeTimeout: return "handshake-timeout";
    case FlightEvent::kJoin: return "join";
    case FlightEvent::kLeaseRequest: return "lease-request";
    case FlightEvent::kLeaseGrant: return "lease-grant";
    case FlightEvent::kResult: return "result";
    case FlightEvent::kStats: return "stats";
    case FlightEvent::kDetach: return "detach";
    case FlightEvent::kReattach: return "reattach";
    case FlightEvent::kRequeue: return "requeue";
    case FlightEvent::kHeartbeatMiss: return "heartbeat-miss";
    case FlightEvent::kIdleTimeout: return "idle-timeout";
    case FlightEvent::kBye: return "bye";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      t0_(std::chrono::steady_clock::now()) {
  ring_.resize(capacity_);
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity == 0) capacity = 1;
  // Re-linearise (oldest first) into a fresh ring; anything that does not
  // fit is the oldest tail and counts as dropped, exactly as TraceLog's
  // shrink path counts its front eviction.
  std::vector<FlightRecord> ordered = snapshot_locked();
  if (ordered.size() > capacity) {
    const std::size_t evict = ordered.size() - capacity;
    ordered.erase(ordered.begin(),
                  ordered.begin() + static_cast<std::ptrdiff_t>(evict));
    dropped_ += evict;
  }
  capacity_ = capacity;
  ring_.assign(capacity_, FlightRecord{});
  std::copy(ordered.begin(), ordered.end(), ring_.begin());
  size_ = ordered.size();
  head_ = size_ % capacity_;
}

std::size_t FlightRecorder::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

std::uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::uint64_t FlightRecorder::total_added() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_ + size_;
}

void FlightRecorder::record(FlightEvent event, std::string_view worker,
                            int job, int slot, std::int64_t epoch) {
  const auto t_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0_)
          .count());
  std::lock_guard<std::mutex> lock(mu_);
  FlightRecord& r = ring_[head_];
  r.t_us = t_us;
  r.event = event;
  const std::size_t n = std::min(worker.size(), sizeof r.worker - 1);
  std::memcpy(r.worker, worker.data(), n);
  r.worker[n] = '\0';
  r.job = job;
  r.slot = slot;
  r.epoch = epoch;
  head_ = (head_ + 1) % capacity_;
  if (size_ < capacity_) {
    ++size_;
  } else {
    ++dropped_;  // overwrote the oldest record
  }
}

std::vector<FlightRecord> FlightRecorder::snapshot_locked() const {
  std::vector<FlightRecord> out;
  out.reserve(size_);
  const std::size_t start = (head_ + capacity_ - size_) % capacity_;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_locked();
}

std::string FlightRecorder::to_jsonl() const {
  std::vector<FlightRecord> records;
  std::uint64_t dropped = 0;
  std::uint64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    records = snapshot_locked();
    dropped = dropped_;
    total = dropped_ + size_;
  }
  std::string out;
  for (const FlightRecord& r : records) {
    campaign::json::Writer w;
    w.begin_object();
    w.kv("t_us", r.t_us);
    w.kv("event", flight_event_name(r.event));
    w.kv("worker", std::string_view(r.worker));
    w.kv("job", r.job);
    w.kv("slot", r.slot);
    w.kv("epoch", r.epoch);
    w.end_object();
    out += w.str();
    out += '\n';
  }
  campaign::json::Writer w;
  w.begin_object();
  w.kv("event", "flight-meta");
  w.kv("recorded", total);
  w.kv("dropped", dropped);
  w.end_object();
  out += w.str();
  out += '\n';
  return out;
}

std::string FlightRecorder::to_trace_events(std::string_view process_label,
                                            int pid) const {
  const std::vector<FlightRecord> records = snapshot();
  using campaign::json::Writer;
  // Thread lanes: tid 0 for untagged events, workers get 1..N in id order
  // so the lane layout is stable whatever order workers first appeared in.
  std::map<std::string, int> tid_of;
  for (const FlightRecord& r : records) {
    if (r.worker[0] != '\0') tid_of.emplace(r.worker, 0);
  }
  int next_tid = 1;
  for (auto& [id, tid] : tid_of) tid = next_tid++;

  Writer w;
  bool first = true;
  auto sep = [&] {
    if (!first) w.value_raw(",");
    first = false;
  };
  auto meta = [&](const char* what, int tid, std::string_view name) {
    sep();
    w.begin_object();
    w.kv("name", what);
    w.kv("ph", "M");
    w.kv("pid", pid);
    w.kv("tid", tid);
    w.key("args").begin_object().kv("name", name).end_object();
    w.end_object();
  };
  meta("process_name", 0, process_label);
  meta("thread_name", 0, "fabric");
  for (const auto& [id, tid] : tid_of) meta("thread_name", tid, id);

  for (const FlightRecord& r : records) {
    sep();
    w.begin_object();
    w.kv("name", flight_event_name(r.event));
    w.kv("cat", "fabric");
    w.kv("ph", "i");
    w.kv("ts", r.t_us);
    w.kv("pid", pid);
    w.kv("tid", r.worker[0] != '\0' ? tid_of.at(r.worker) : 0);
    w.kv("s", "t");
    w.key("args").begin_object();
    w.kv("job", r.job);
    w.kv("slot", r.slot);
    w.kv("epoch", r.epoch);
    w.end_object();
    w.end_object();
  }
  return records.empty() ? std::string() : w.str();
}

}  // namespace pfi::fabric
