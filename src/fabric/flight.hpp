// Fabric flight recorder: a bounded, allocation-light ring of structured
// control-plane events (connects, auth rejections, lease grants, results,
// detaches, reattaches, requeues, heartbeat misses, idle timeouts).
//
// The fabric's behaviour under churn — which worker held which lease when
// the link flapped, how long a requeue took to land on a survivor — is
// exactly the kind of thing the paper says an experimenter must be able to
// *see*, and exactly what a handful of aggregate counters cannot show. The
// recorder is the fleet-level analogue of trace::TraceLog: both coordinator
// and workers append fixed-size records tagged with worker id, job, slot,
// lease epoch and a monotonic microsecond timestamp, and dump them either
// as JSONL (`--flight-out`) or as Chrome trace-event lanes (pid = host,
// tid = worker) that splice into the same `--timeline` document the
// per-cell simulation lanes use.
//
// Design constraints:
//
//   * Bounded: a pre-allocated ring; when full, the oldest record is
//     overwritten and a monotonic `dropped` counter advances — the same
//     contract as TraceLog::set_capacity (total_added == size + dropped).
//   * Allocation-light: record() copies a fixed-size POD into the
//     pre-sized ring under a mutex — no heap traffic on the hot path, so
//     recording from executor callbacks is safe even while the --isolate
//     path forks.
//   * Side-channel only: flight records carry wall-clock timestamps and
//     never feed a report, journal or per-run record.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pfi::fabric {

/// The event catalog (docs/FABRIC.md "Fleet observability" lists each one).
enum class FlightEvent : std::uint8_t {
  kConnect,           // a peer connected (coordinator: accept; worker: dial)
  kAddrReject,        // TCP peer refused by the allowlist
  kVersionReject,     // HELLO refused by version negotiation
  kAuthReject,        // HELLO refused by token mismatch
  kHandshakeTimeout,  // pre-HELLO connection dropped as stalled
  kJoin,              // worker completed a fresh HELLO handshake
  kLeaseRequest,      // worker asked for cells
  kLeaseGrant,        // a lease grant left (coordinator) / arrived (worker)
  kResult,            // a result arrived (coordinator) / was sent (worker)
  kStats,             // a STATS metrics snapshot crossed the wire
  kDetach,            // link lost; reconnect grace running
  kReattach,          // detached worker resumed under its stable id
  kRequeue,           // grace expired: one leased slot went back to a queue
  kHeartbeatMiss,     // liveness beats stopped (dead_after / failed send)
  kIdleTimeout,       // worker's idle detector declared the link dead
  kBye,               // graceful goodbye
};

/// Stable kebab-case name ("lease-grant") used in JSONL and trace lanes.
const char* flight_event_name(FlightEvent e);

/// One fixed-size ring entry. `worker` is truncated to fit; job/slot are -1
/// and epoch 0 when the event carries no such tag.
struct FlightRecord {
  std::uint64_t t_us = 0;  // monotonic µs since the recorder was created
  FlightEvent event = FlightEvent::kConnect;
  char worker[15] = {};    // NUL-terminated worker id ("" = none)
  std::int32_t job = -1;
  std::int32_t slot = -1;
  std::int64_t epoch = 0;
};

/// Thread-safe bounded event ring. One per process side (the coordinator's
/// Engine and each worker's run_worker loop write to their own).
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  /// Resize the ring. Shrinking evicts the oldest records and counts them
  /// as dropped — TraceLog::set_capacity semantics. Capacity 0 is clamped
  /// to 1 (the ring is always bounded; that is its point).
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const;
  [[nodiscard]] std::size_t size() const;
  /// Records evicted to make room, ever. Monotonic.
  [[nodiscard]] std::uint64_t dropped() const;
  /// Records ever recorded (= size() + dropped()).
  [[nodiscard]] std::uint64_t total_added() const;

  void record(FlightEvent event, std::string_view worker = {}, int job = -1,
              int slot = -1, std::int64_t epoch = 0);

  /// Oldest-first copy of the current ring contents.
  [[nodiscard]] std::vector<FlightRecord> snapshot() const;

  /// One JSON object per line, oldest first, fixed key set:
  ///   {"t_us":N,"event":"lease-grant","worker":"w1","job":1,"slot":0,
  ///    "epoch":7}
  /// A final {"event":"flight-meta","recorded":N,"dropped":N} line reports
  /// ring accounting so a consumer can tell truncation from quiet.
  [[nodiscard]] std::string to_jsonl() const;

  /// Chrome trace-event fragment (comma-separated objects, no brackets):
  /// one process lane named `process_label`, one thread lane per worker id
  /// (tid 0 carries events with no worker tag). Splices into
  /// obs::timeline_document alongside per-cell simulation fragments.
  [[nodiscard]] std::string to_trace_events(std::string_view process_label,
                                            int pid) const;

 private:
  [[nodiscard]] std::vector<FlightRecord> snapshot_locked() const;

  mutable std::mutex mu_;
  std::vector<FlightRecord> ring_;  // pre-sized to capacity_
  std::size_t capacity_;
  std::size_t head_ = 0;  // next write position
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace pfi::fabric
