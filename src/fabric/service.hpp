// Campaign-as-a-service daemon (`pfi_fabricd`).
//
// One long-lived Engine accepts *both* kinds of connection on one socket:
// workers (HELLO role=worker) join the lease pool exactly as they would for
// a one-shot coordinator, and clients (HELLO role=client) SUBMIT campaign
// or search specs as jobs. Jobs queue FIFO and run one at a time — the
// worker pool is a shared resource; interleaving two campaigns' cells would
// gain nothing and cost both their progress ordering.
//
// Each job runs on its own thread (campaign assembly, or search::explore's
// mutation loop) and posts cell batches to the daemon's event loop through
// a Bridge; the event loop dispatches them through the Engine and posts the
// slot-ordered results back. So the execution path — and therefore every
// record — is byte-identical to `pfi_campaign --workers N`, which is
// byte-identical to `--jobs 1`.
//
// While a job runs, its client receives PROGRESS frames (one JSON line per
// finished cell, plus the search engine's generation lines); when it ends,
// ARTIFACT frames (campaign: report + journal + metrics; search: report +
// corpus) and one DONE frame with the summary. A client that disconnects
// mid-job doesn't kill the job — results still exist in the workers'
// journals; only the artifact delivery is lost.
#pragma once

#include <functional>
#include <string>

#include "fabric/coordinator.hpp"
#include "fabric/socket.hpp"

namespace pfi::fabric {

struct ServiceStats {
  int jobs_accepted = 0;
  int jobs_completed = 0;
  int jobs_rejected = 0;   // SUBMITs that failed to parse/plan
  FabricStats fabric;      // copied from the engine at shutdown
};

struct ServiceOptions {
  int lease_batch = 8;
  int dead_after_ms = 5000;
  /// Sampled every loop iteration; true drains the active job (its
  /// unfinished cells come back index == -1) and BYEs everyone.
  std::function<bool()> should_stop;
  std::function<void(const std::string&)> on_log;
};

/// Run the daemon event loop until should_stop. Returns 0 on a clean
/// shutdown. The listener stays owned by the caller.
int run_service(Listener* listener, const ServiceOptions& opts,
                ServiceStats* stats = nullptr);

}  // namespace pfi::fabric
