// Campaign-as-a-service daemon (`pfi_fabricd`).
//
// One long-lived Engine accepts *both* kinds of connection on one socket:
// workers (HELLO role=worker) join the lease pool exactly as they would for
// a one-shot coordinator, and clients (HELLO role=client) SUBMIT campaign
// or search specs as jobs. Up to max_active jobs run **concurrently** over
// the shared worker pool — each job's cells are a separate Engine batch,
// leases are granted round-robin across jobs, and a job's `--max-workers`
// quota caps how many distinct workers serve it at once. Further
// submissions queue FIFO behind the active set.
//
// Each job runs on its own thread (campaign assembly, or search::explore's
// mutation loop) and posts cell batches to the daemon's event loop through
// a Bridge; the event loop dispatches them through the Engine and posts the
// slot-ordered results back. So the execution path — and therefore every
// record — is byte-identical to `pfi_campaign --workers N`, which is
// byte-identical to `--jobs 1`.
//
// While a campaign job runs, its client receives PROGRESS frames (one JSON
// line per finished cell) *and* incremental journal ARTIFACT chunks — each
// finished record streamed as one journal line keyed by its content hash —
// so a client killed mid-run already holds every delivered record and can
// resubmit with Submit.have to execute only the remainder. When a job
// ends: final ARTIFACT frames (campaign: report + journal + metrics;
// search: report + corpus) and one DONE frame with the summary. A client
// that disconnects mid-job doesn't kill the job's in-flight cells, but its
// still-queued cells are cancelled (nobody is listening) and queued
// never-started jobs from that client are dropped.
//
// Any client may also send an empty STATUS frame at any time (wire v3) and
// gets back one STATUS frame carrying a deterministic-schema JSON document:
// daemon counters, every active/queued job with its progress tallies, every
// known worker's lease/reattach/last-seen state, the FabricStats counters,
// and the fleet-merged metrics. `pfi_campaign --status ADDR` is the CLI for
// it; docs/FABRIC.md "Fleet observability" pins the schema.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fabric/coordinator.hpp"
#include "fabric/socket.hpp"

namespace pfi::fabric {

struct ServiceStats {
  int jobs_accepted = 0;
  int jobs_completed = 0;
  int jobs_rejected = 0;   // SUBMITs that failed to parse/plan
  int peak_active = 0;     // most jobs ever running concurrently
  FabricStats fabric;      // copied from the engine at shutdown
};

struct ServiceOptions {
  int lease_batch = 8;
  int dead_after_ms = 5000;
  /// Detached-worker grace before requeue; -1 = dead_after_ms.
  int reconnect_grace_ms = -1;
  /// Coordinator -> worker liveness beat interval (0 = off).
  int heartbeat_ms = 500;
  /// Shared secret every HELLO (worker *and* client) must present.
  std::string token;
  /// TCP peer-address allowlist (dotted quads); empty = all.
  std::vector<std::string> allow;
  /// Jobs running concurrently over the shared pool; more queue FIFO.
  int max_active = 4;
  /// Sampled every loop iteration; true drains the active jobs (their
  /// unfinished cells come back index == -1) and BYEs everyone.
  std::function<bool()> should_stop;
  std::function<void(const std::string&)> on_log;
  /// Observability plane (optional, side-channel): the daemon's Engine
  /// records control-plane events into `flight` and coordinator stage
  /// timings into `obs`; both feed the STATUS reply and the fleet section
  /// of every campaign job's metrics artifact.
  FlightRecorder* flight = nullptr;
  obs::Registry* obs = nullptr;
};

/// Run the daemon event loop until should_stop. Returns 0 on a clean
/// shutdown. The listener stays owned by the caller.
int run_service(Listener* listener, const ServiceOptions& opts,
                ServiceStats* stats = nullptr);

}  // namespace pfi::fabric
