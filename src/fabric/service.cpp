#include "fabric/service.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/executor.hpp"
#include "campaign/journal.hpp"
#include "campaign/json.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "fabric/wire.hpp"
#include "obs/metrics.hpp"
#include "search/search.hpp"

namespace pfi::fabric {

namespace {

/// Handoff between a job thread (which wants batches executed) and the
/// daemon's event loop (which owns the Engine). The job thread blocks in
/// run(); the event loop picks the batch up, dispatches it through the
/// Engine, and posts the slot-ordered results back.
struct Bridge {
  std::mutex mu;
  std::condition_variable cv;
  const std::vector<campaign::RunCell>* batch = nullptr;  // posted, not taken
  bool batch_done = false;
  std::vector<campaign::RunResult> batch_results;
  std::vector<std::string> progress;  // job thread -> client, JSON lines
  bool stop = false;                  // daemon shutting down: drain

  std::vector<campaign::RunResult> run(
      const std::vector<campaign::RunCell>& cells) {
    std::unique_lock<std::mutex> lock(mu);
    if (stop || cells.empty()) {
      // Executor contract for "nothing ran": default results, index == -1.
      return std::vector<campaign::RunResult>(cells.size());
    }
    batch = &cells;
    batch_done = false;
    cv.wait(lock, [&] { return batch_done; });
    batch = nullptr;
    return std::move(batch_results);
  }

  void push_progress(const std::string& json) {
    std::lock_guard<std::mutex> lock(mu);
    progress.push_back(json);
  }
};

struct Job {
  std::string id;
  int client_fd = -1;  // -1 once the client went away
  Submit submit;
  campaign::CampaignSpec spec;

  Bridge bridge;
  std::thread thread;
  // Written by the job thread, read by the event loop strictly after
  // `finished` turns true under the bridge mutex.
  std::vector<std::pair<std::string, std::string>> artifacts;
  std::string done_json;
  bool finished = false;

  // Event-loop-side dispatch state for the batch in flight.
  bool dispatching = false;
  std::vector<campaign::RunResult> staged;
  int done_cells = 0, total_cells = 0;
  int pass = 0, fail = 0, error = 0;
};

std::string progress_json(const Job& job, const campaign::RunResult& r) {
  campaign::json::Writer w;
  w.begin_object();
  w.kv("job", job.id);
  w.kv("id", r.id);
  w.kv("verdict", r.errored() ? "error" : (r.pass ? "pass" : "fail"));
  w.kv("done", job.done_cells);
  w.kv("total", job.total_cells);
  w.kv("pass", job.pass);
  w.kv("fail", job.fail);
  w.kv("error", job.error);
  w.end_object();
  return w.str();
}

std::string done_error_json(const std::string& job_id,
                            const std::string& message) {
  campaign::json::Writer w;
  w.begin_object();
  w.kv("job", job_id);
  w.kv("status", "error");
  w.kv("error", message);
  w.end_object();
  return w.str();
}

/// The campaign job body (runs on the job thread). One bridge.run() call
/// executes the whole plan over the fabric; everything before and after is
/// the same deterministic assembly pfi_campaign does.
void run_campaign_job(Job* job) {
  const auto cells =
      campaign::filter_cells(campaign::plan(job->spec), job->submit.filter);
  std::vector<std::string> keys;
  keys.reserve(cells.size());
  for (const auto& c : cells) keys.push_back(campaign::cell_key(c));

  const auto results = job->bridge.run(cells);

  std::vector<std::string> records(cells.size());
  std::map<std::string, std::string> journal;
  std::map<std::string, pfi::obs::MetricSample> metrics;
  int measured = 0;
  std::map<int, std::size_t> slot_of_index;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    slot_of_index[cells[i].index] = i;
  }
  for (const auto& r : results) {
    if (r.index < 0) continue;  // drained on shutdown before it ran
    const std::size_t slot = slot_of_index[r.index];
    records[slot] = campaign::record_json(r);
    journal[keys[slot]] = records[slot];
    if (!r.metrics.empty()) {
      ++measured;
      pfi::obs::merge_samples(&metrics, r.metrics);
    }
  }

  int pass = 0, fail = 0, error = 0, skipped = 0;
  std::vector<std::string> failing_ids;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].empty()) {
      ++skipped;
      continue;
    }
    if (results[i].errored()) {
      ++error;
    } else if (results[i].pass) {
      ++pass;
    } else {
      ++fail;
    }
    if (results[i].errored() || !results[i].pass) {
      failing_ids.push_back(results[i].id);
    }
  }

  // The report: same shape as pfi_campaign's, minus the wall-clock and
  // host-execution fields (jobs, wall_ms) that a service must not leak
  // into a deterministic document.
  campaign::json::Writer w;
  w.begin_object();
  w.kv("campaign", job->spec.name);
  w.kv("protocol", job->spec.protocol);
  w.kv("oracle", job->spec.oracle);
  w.kv("cells", static_cast<int>(cells.size()));
  w.key("runs").begin_array();
  for (const std::string& rec : records) {
    if (!rec.empty()) w.value_raw(rec);
  }
  w.end_array();
  w.key("summary").begin_object();
  w.kv("pass", pass);
  w.kv("fail", fail);
  w.kv("error", error);
  if (skipped > 0) w.kv("skipped", skipped);
  w.end_object();
  w.key("failing_ids").begin_array();
  for (const std::string& id : failing_ids) w.value(id);
  w.end_array();
  w.end_object();

  campaign::json::Writer mw;
  mw.begin_object();
  mw.kv("campaign", job->spec.name);
  mw.kv("cells", static_cast<int>(cells.size()));
  mw.kv("cells_measured", measured);
  mw.key("metrics").begin_object();
  for (const auto& [name, m] : metrics) mw.kv(name, m.value);
  mw.end_object();
  mw.end_object();

  campaign::json::Writer dw;
  dw.begin_object();
  dw.kv("job", job->id);
  dw.kv("status", skipped > 0 ? "interrupted" : "ok");
  dw.kv("cells", static_cast<int>(cells.size()));
  dw.kv("pass", pass);
  dw.kv("fail", fail);
  dw.kv("error", error);
  if (skipped > 0) dw.kv("skipped", skipped);
  dw.end_object();

  std::lock_guard<std::mutex> lock(job->bridge.mu);
  job->artifacts.emplace_back("report", w.str() + "\n");
  job->artifacts.emplace_back("journal", campaign::journal_jsonl(journal));
  job->artifacts.emplace_back("metrics", mw.str() + "\n");
  job->done_json = dw.str();
  job->finished = true;
}

/// The search job body: search::explore with its batch execution rerouted
/// over the fabric. Minimizer probes stay in-process inside the daemon (see
/// SearchOptions::run_batch) — they are sequential single cells.
void run_search_job(Job* job) {
  pfi::search::SearchOptions sopts;
  sopts.budget = job->submit.explore;
  if (job->submit.retries >= 0) sopts.retries = job->submit.retries;
  sopts.run_batch = [job](const std::vector<campaign::RunCell>& cells,
                          const campaign::ExecutorOptions&) {
    return job->bridge.run(cells);
  };
  sopts.should_stop = [job] {
    std::lock_guard<std::mutex> lock(job->bridge.mu);
    return job->bridge.stop;
  };
  sopts.on_progress = [job](const std::string& line) {
    campaign::json::Writer w;
    w.begin_object();
    w.kv("job", job->id);
    w.kv("note", line);
    w.end_object();
    job->bridge.push_progress(w.str());
  };

  const pfi::search::SearchResult res =
      pfi::search::explore(job->spec, sopts);

  campaign::json::Writer dw;
  dw.begin_object();
  dw.kv("job", job->id);
  if (!res.error.empty()) {
    dw.kv("status", "error");
    dw.kv("error", res.error);
  } else {
    dw.kv("status", res.interrupted ? "interrupted" : "ok");
  }
  dw.kv("executed", res.executed);
  dw.kv("digests", static_cast<int>(res.corpus.size()));
  dw.kv("violations", static_cast<int>(res.violations.size()));
  dw.end_object();

  std::lock_guard<std::mutex> lock(job->bridge.mu);
  job->artifacts.emplace_back(
      "report", pfi::search::report_json(job->spec, sopts, res) + "\n");
  job->artifacts.emplace_back("corpus", res.corpus.to_jsonl());
  job->done_json = dw.str();
  job->finished = true;
}

class Service {
 public:
  Service(Listener* listener, const ServiceOptions& opts, ServiceStats* stats)
      : opts_(opts), stats_(stats) {
    Engine::Options eopts;
    eopts.lease_batch = opts.lease_batch;
    eopts.dead_after_ms = opts.dead_after_ms;
    eopts.accept_clients = true;
    eopts.on_log = opts.on_log;
    eopts.on_client_frame = [this](int fd, const Frame& f) {
      on_client_frame(fd, f);
    };
    eopts.on_client_closed = [this](int fd) { on_client_closed(fd); };
    engine_ = std::make_unique<Engine>(listener, std::move(eopts));
  }

  int run() {
    while (!(opts_.should_stop && opts_.should_stop())) {
      engine_->step(200);
      pump();
    }
    drain_active("daemon shutting down");
    engine_->shutdown("daemon shutting down");
    if (stats_ != nullptr) stats_->fabric = engine_->stats;
    return 0;
  }

 private:
  void log(const std::string& msg) {
    if (opts_.on_log) opts_.on_log(msg);
  }

  void send_json(int fd, FrameType type, const std::string& json) {
    if (fd < 0) return;
    engine_->send_to_client(fd, encode_json_line(type, json));
  }

  void on_client_frame(int fd, const Frame& f) {
    if (f.type != FrameType::kSubmit) return;  // PROGRESS etc. are ours
    Submit s;
    std::string err;
    if (!decode_submit(f.payload, &s)) {
      err = "malformed SUBMIT payload";
    }
    const std::string id = "job-" + std::to_string(++job_seq_);
    std::optional<campaign::CampaignSpec> spec;
    if (err.empty()) {
      spec = campaign::parse_spec(s.spec_text, &err);
    }
    if (!spec) {
      if (stats_ != nullptr) ++stats_->jobs_rejected;
      log(id + " rejected: " + err);
      send_json(fd, FrameType::kDone, done_error_json(id, err));
      return;
    }
    if (s.timeout_ms >= 0) spec->timeout_ms = s.timeout_ms;
    if (s.max_events >= 0) {
      spec->max_sim_events = static_cast<std::uint64_t>(s.max_events);
    }
    auto job = std::make_unique<Job>();
    job->id = id;
    job->client_fd = fd;
    job->submit = std::move(s);
    job->spec = std::move(*spec);
    if (stats_ != nullptr) ++stats_->jobs_accepted;
    log(id + " queued: " + job->spec.name +
        (job->submit.explore > 0 ? " (explore)" : " (campaign)"));
    queue_.push_back(std::move(job));
    maybe_start();
  }

  void on_client_closed(int fd) {
    // The job outlives its client: execution continues, artifact delivery
    // is dropped. Queued jobs from that client run too — they were accepted.
    if (active_ && active_->client_fd == fd) active_->client_fd = -1;
    for (auto& j : queue_) {
      if (j->client_fd == fd) j->client_fd = -1;
    }
  }

  void maybe_start() {
    if (active_ || queue_.empty()) return;
    active_ = std::move(queue_.front());
    queue_.pop_front();
    Job* job = active_.get();
    log(job->id + " started");
    job->thread = std::thread(job->submit.explore > 0 ? run_search_job
                                                      : run_campaign_job,
                              job);
  }

  /// One scheduling pass: relay progress, pick up posted batches, finish
  /// completed jobs, start the next one.
  void pump() {
    if (!active_) return;
    Job* job = active_.get();

    std::vector<std::string> progress;
    const std::vector<campaign::RunCell>* batch = nullptr;
    bool finished = false;
    {
      std::lock_guard<std::mutex> lock(job->bridge.mu);
      progress.swap(job->bridge.progress);
      if (job->bridge.batch != nullptr && !job->bridge.batch_done &&
          !job->dispatching) {
        batch = job->bridge.batch;
      }
      finished = job->finished;
    }
    for (const std::string& line : progress) {
      send_json(job->client_fd, FrameType::kProgress, line);
    }

    if (batch != nullptr) {
      job->dispatching = true;
      job->staged.assign(batch->size(), campaign::RunResult{});
      job->done_cells = 0;
      job->total_cells = static_cast<int>(batch->size());
      engine_->set_batch(
          batch,
          [this, job](int slot, campaign::RunResult r) {
            ++job->done_cells;
            if (r.errored()) {
              ++job->error;
            } else if (r.pass) {
              ++job->pass;
            } else {
              ++job->fail;
            }
            job->staged[static_cast<std::size_t>(slot)] = std::move(r);
            send_json(job->client_fd, FrameType::kProgress,
                      progress_json(*job,
                                    job->staged[static_cast<std::size_t>(
                                        slot)]));
          },
          [job] {
            std::lock_guard<std::mutex> lock(job->bridge.mu);
            job->bridge.batch_results = std::move(job->staged);
            job->bridge.batch_done = true;
            job->dispatching = false;
            job->bridge.cv.notify_all();
          });
    }

    if (finished) finish_active();
  }

  void finish_active() {
    Job* job = active_.get();
    job->thread.join();
    for (const auto& [name, bytes] : job->artifacts) {
      if (job->client_fd >= 0) {
        engine_->send_to_client(
            job->client_fd,
            encode_frame(FrameType::kArtifact, encode_artifact(name, bytes)));
      }
    }
    send_json(job->client_fd, FrameType::kDone, job->done_json);
    log(job->id + " finished");
    if (stats_ != nullptr) ++stats_->jobs_completed;
    active_.reset();
    maybe_start();
  }

  /// Shutdown with a job in flight: release the job thread with whatever
  /// results exist (unfinished slots keep index == -1), then finish it so
  /// the client at least gets a DONE.
  void drain_active(const std::string& reason) {
    if (!active_) return;
    Job* job = active_.get();
    for (;;) {
      bool finished = false;
      {
        std::lock_guard<std::mutex> lock(job->bridge.mu);
        job->bridge.stop = true;
        if (job->bridge.batch != nullptr && !job->bridge.batch_done) {
          job->bridge.batch_results = std::move(job->staged);
          job->bridge.batch_results.resize(job->bridge.batch->size());
          job->bridge.batch_done = true;
          job->dispatching = false;
        }
        job->bridge.cv.notify_all();
        finished = job->finished;
      }
      if (finished) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    log(job->id + " drained: " + reason);
    finish_active();
    // Queued jobs never started; tell their clients.
    while (!queue_.empty()) {
      auto j = std::move(queue_.front());
      queue_.pop_front();
      send_json(j->client_fd, FrameType::kDone,
                done_error_json(j->id, reason));
    }
  }

  ServiceOptions opts_;
  ServiceStats* stats_;
  std::unique_ptr<Engine> engine_;
  std::deque<std::unique_ptr<Job>> queue_;
  std::unique_ptr<Job> active_;
  int job_seq_ = 0;
};

}  // namespace

int run_service(Listener* listener, const ServiceOptions& opts,
                ServiceStats* stats) {
  Service service(listener, opts, stats);
  return service.run();
}

}  // namespace pfi::fabric
