#include "fabric/service.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/executor.hpp"
#include "campaign/journal.hpp"
#include "campaign/json.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "fabric/wire.hpp"
#include "obs/metrics.hpp"
#include "search/search.hpp"

namespace pfi::fabric {

namespace {

/// Handoff between a job thread (which wants batches executed) and the
/// daemon's event loop (which owns the Engine). The job thread blocks in
/// run(); the event loop picks the batch up, dispatches it through the
/// Engine, and posts the slot-ordered results back.
struct Bridge {
  std::mutex mu;
  std::condition_variable cv;
  const std::vector<campaign::RunCell>* batch = nullptr;  // posted, not taken
  /// Parallel content keys (campaign jobs only): lets the event loop
  /// stream each finished record to the client as a journal chunk.
  const std::vector<std::string>* batch_keys = nullptr;
  bool batch_done = false;
  std::vector<campaign::RunResult> batch_results;
  std::vector<std::string> progress;  // job thread -> client, JSON lines
  bool stop = false;                  // daemon shutting down: drain

  std::vector<campaign::RunResult> run(
      const std::vector<campaign::RunCell>& cells,
      const std::vector<std::string>* keys = nullptr) {
    std::unique_lock<std::mutex> lock(mu);
    if (stop || cells.empty()) {
      // Executor contract for "nothing ran": default results, index == -1.
      return std::vector<campaign::RunResult>(cells.size());
    }
    batch = &cells;
    batch_keys = keys;
    batch_done = false;
    cv.wait(lock, [&] { return batch_done; });
    batch = nullptr;
    batch_keys = nullptr;
    return std::move(batch_results);
  }

  void push_progress(const std::string& json) {
    std::lock_guard<std::mutex> lock(mu);
    progress.push_back(json);
  }
};

struct Job {
  std::string id;
  int client_fd = -1;  // -1 once the client went away
  Submit submit;
  campaign::CampaignSpec spec;

  Bridge bridge;
  std::thread thread;
  // Written by the job thread, read by the event loop strictly after
  // `finished` turns true under the bridge mutex.
  std::vector<std::pair<std::string, std::string>> artifacts;
  std::string done_json;
  bool finished = false;
  /// Campaign jobs only: the deterministic per-cell metrics merge, handed
  /// to the event loop so finish_job can assemble the metrics artifact
  /// *with* the engine's fleet sections (the job thread has no engine).
  std::map<std::string, pfi::obs::MetricSample> cell_metrics;
  int cells_measured = 0;
  int cells_planned = 0;
  bool wants_metrics = false;  // campaign jobs emit a metrics artifact

  // Event-loop-side dispatch state for the batch in flight.
  bool dispatching = false;
  int engine_job = -1;  // Engine batch id while dispatching
  const std::vector<std::string>* keys = nullptr;  // journal chunk keys
  std::vector<campaign::RunResult> staged;
  int done_cells = 0, total_cells = 0;
  int pass = 0, fail = 0, error = 0;
};

std::string progress_json(const Job& job, const campaign::RunResult& r) {
  campaign::json::Writer w;
  w.begin_object();
  w.kv("job", job.id);
  w.kv("id", r.id);
  w.kv("verdict", r.errored() ? "error" : (r.pass ? "pass" : "fail"));
  w.kv("done", job.done_cells);
  w.kv("total", job.total_cells);
  w.kv("pass", job.pass);
  w.kv("fail", job.fail);
  w.kv("error", job.error);
  w.end_object();
  return w.str();
}

std::string done_error_json(const std::string& job_id,
                            const std::string& message) {
  campaign::json::Writer w;
  w.begin_object();
  w.kv("job", job_id);
  w.kv("status", "error");
  w.kv("error", message);
  w.end_object();
  return w.str();
}

/// The campaign job body (runs on the job thread). One bridge.run() call
/// executes the whole plan over the fabric; everything before and after is
/// the same deterministic assembly pfi_campaign does. Cells whose content
/// key appears in Submit.have are the client's resume set: they are never
/// executed, never re-transferred, and counted as "resumed".
void run_campaign_job(Job* job) {
  const auto planned =
      campaign::filter_cells(campaign::plan(job->spec), job->submit.filter);
  const std::set<std::string> have(job->submit.have.begin(),
                                   job->submit.have.end());
  std::vector<campaign::RunCell> cells;
  std::vector<std::string> keys;
  int resumed = 0;
  for (const auto& c : planned) {
    std::string key = campaign::cell_key(c);
    if (have.count(key) != 0) {
      ++resumed;
      continue;
    }
    cells.push_back(c);
    keys.push_back(std::move(key));
  }

  const auto results = job->bridge.run(cells, &keys);

  std::vector<std::string> records(cells.size());
  std::map<std::string, std::string> journal;
  std::map<std::string, pfi::obs::MetricSample> metrics;
  int measured = 0;
  std::map<int, std::size_t> slot_of_index;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    slot_of_index[cells[i].index] = i;
  }
  for (const auto& r : results) {
    if (r.index < 0) continue;  // drained on shutdown before it ran
    // find(), never operator[]: a result whose index matches no dispatched
    // cell (a buggy or malicious worker echoing the wrong one) must be
    // dropped, not default-inserted into slot 0 over a real record.
    const auto st = slot_of_index.find(r.index);
    if (st == slot_of_index.end()) continue;
    const std::size_t slot = st->second;
    records[slot] = campaign::record_json(r);
    journal[keys[slot]] = records[slot];
    if (!r.metrics.empty()) {
      ++measured;
      pfi::obs::merge_samples(&metrics, r.metrics);
    }
  }

  int pass = 0, fail = 0, error = 0, skipped = 0;
  std::vector<std::string> failing_ids;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].empty()) {
      ++skipped;
      continue;
    }
    if (results[i].errored()) {
      ++error;
    } else if (results[i].pass) {
      ++pass;
    } else {
      ++fail;
    }
    if (results[i].errored() || !results[i].pass) {
      failing_ids.push_back(results[i].id);
    }
  }

  // The report: same shape as pfi_campaign's, minus the wall-clock and
  // host-execution fields (jobs, wall_ms) that a service must not leak
  // into a deterministic document.
  campaign::json::Writer w;
  w.begin_object();
  w.kv("campaign", job->spec.name);
  w.kv("protocol", job->spec.protocol);
  w.kv("oracle", job->spec.oracle);
  w.kv("cells", static_cast<int>(cells.size()));
  w.key("runs").begin_array();
  for (const std::string& rec : records) {
    if (!rec.empty()) w.value_raw(rec);
  }
  w.end_array();
  w.key("summary").begin_object();
  w.kv("pass", pass);
  w.kv("fail", fail);
  w.kv("error", error);
  if (skipped > 0) w.kv("skipped", skipped);
  if (resumed > 0) w.kv("resumed", resumed);
  w.end_object();
  w.key("failing_ids").begin_array();
  for (const std::string& id : failing_ids) w.value(id);
  w.end_array();
  w.end_object();

  campaign::json::Writer dw;
  dw.begin_object();
  dw.kv("job", job->id);
  dw.kv("status", skipped > 0 ? "interrupted" : "ok");
  dw.kv("cells", static_cast<int>(cells.size()));
  dw.kv("pass", pass);
  dw.kv("fail", fail);
  dw.kv("error", error);
  if (skipped > 0) dw.kv("skipped", skipped);
  if (resumed > 0) dw.kv("resumed", resumed);
  dw.end_object();

  std::lock_guard<std::mutex> lock(job->bridge.mu);
  job->artifacts.emplace_back("report", w.str() + "\n");
  job->artifacts.emplace_back("journal", campaign::journal_jsonl(journal));
  // The metrics artifact is assembled by the event loop (finish_job): its
  // fleet sections come from the Engine, which this thread must not touch.
  job->cell_metrics = std::move(metrics);
  job->cells_measured = measured;
  job->cells_planned = static_cast<int>(cells.size());
  job->wants_metrics = true;
  job->done_json = dw.str();
  job->finished = true;
}

/// The search job body: search::explore with its batch execution rerouted
/// over the fabric. Minimizer probes stay in-process inside the daemon (see
/// SearchOptions::run_batch) — they are sequential single cells.
void run_search_job(Job* job) {
  pfi::search::SearchOptions sopts;
  sopts.budget = job->submit.explore;
  if (job->submit.retries >= 0) sopts.retries = job->submit.retries;
  sopts.run_batch = [job](const std::vector<campaign::RunCell>& cells,
                          const campaign::ExecutorOptions&) {
    return job->bridge.run(cells);
  };
  sopts.should_stop = [job] {
    std::lock_guard<std::mutex> lock(job->bridge.mu);
    return job->bridge.stop;
  };
  sopts.on_progress = [job](const std::string& line) {
    campaign::json::Writer w;
    w.begin_object();
    w.kv("job", job->id);
    w.kv("note", line);
    w.end_object();
    job->bridge.push_progress(w.str());
  };

  const pfi::search::SearchResult res =
      pfi::search::explore(job->spec, sopts);

  campaign::json::Writer dw;
  dw.begin_object();
  dw.kv("job", job->id);
  if (!res.error.empty()) {
    dw.kv("status", "error");
    dw.kv("error", res.error);
  } else {
    dw.kv("status", res.interrupted ? "interrupted" : "ok");
  }
  dw.kv("executed", res.executed);
  dw.kv("digests", static_cast<int>(res.corpus.size()));
  dw.kv("violations", static_cast<int>(res.violations.size()));
  dw.end_object();

  std::lock_guard<std::mutex> lock(job->bridge.mu);
  job->artifacts.emplace_back(
      "report", pfi::search::report_json(job->spec, sopts, res) + "\n");
  job->artifacts.emplace_back("corpus", res.corpus.to_jsonl());
  job->done_json = dw.str();
  job->finished = true;
}

class Service {
 public:
  Service(Listener* listener, const ServiceOptions& opts, ServiceStats* stats)
      : opts_(opts), stats_(stats) {
    if (stats_ == nullptr) stats_ = &own_stats_;  // STATUS reads these
    if (opts_.max_active < 1) opts_.max_active = 1;
    Engine::Options eopts;
    eopts.lease_batch = opts.lease_batch;
    eopts.dead_after_ms = opts.dead_after_ms;
    eopts.reconnect_grace_ms = opts.reconnect_grace_ms;
    eopts.heartbeat_ms = opts.heartbeat_ms;
    eopts.token = opts.token;
    eopts.allow = opts.allow;
    eopts.accept_clients = true;
    eopts.on_log = opts.on_log;
    eopts.on_client_frame = [this](int fd, const Frame& f) {
      on_client_frame(fd, f);
    };
    eopts.on_client_closed = [this](int fd) { on_client_closed(fd); };
    eopts.flight = opts.flight;
    eopts.obs = opts.obs;
    engine_ = std::make_unique<Engine>(listener, std::move(eopts));
  }

  int run() {
    while (!(opts_.should_stop && opts_.should_stop())) {
      engine_->step(200);
      pump();
    }
    drain_all("daemon shutting down");
    engine_->shutdown("daemon shutting down");
    if (stats_ != nullptr) stats_->fabric = engine_->stats;
    return 0;
  }

 private:
  void log(const std::string& msg) {
    if (opts_.on_log) opts_.on_log(msg);
  }

  void send_json(int fd, FrameType type, const std::string& json) {
    if (fd < 0) return;
    engine_->send_to_client(fd, encode_json_line(type, json));
  }

  /// STATUS reply: one JSON document with a fixed key set in a fixed
  /// order, so consumers can parse it without schema negotiation. The
  /// wall-clock field (workers[].last_seen_ms) is inherent to the question
  /// being asked; everything else is counters and queue state.
  [[nodiscard]] std::string status_json() const {
    campaign::json::Writer w;
    w.begin_object();
    w.key("daemon").begin_object();
    w.kv("active", static_cast<int>(active_.size()));
    w.kv("queued", static_cast<int>(queue_.size()));
    w.kv("max_active", opts_.max_active);
    w.kv("jobs_accepted", stats_->jobs_accepted);
    w.kv("jobs_completed", stats_->jobs_completed);
    w.kv("jobs_rejected", stats_->jobs_rejected);
    w.end_object();
    w.key("jobs").begin_array();
    const auto job_obj = [&w](const Job& job, const char* phase) {
      w.begin_object();
      w.kv("job", job.id);
      w.kv("spec", job.spec.name);
      w.kv("kind", job.submit.explore > 0 ? "search" : "campaign");
      w.kv("phase", phase);
      w.kv("done", job.done_cells);
      w.kv("total", job.total_cells);
      w.kv("pass", job.pass);
      w.kv("fail", job.fail);
      w.kv("error", job.error);
      w.end_object();
    };
    for (const auto& jp : active_) job_obj(*jp, "running");
    for (const auto& jp : queue_) job_obj(*jp, "queued");
    w.end_array();
    w.key("workers").begin_array();
    for (const WorkerSnapshot& s : engine_->worker_snapshots()) {
      w.begin_object();
      w.kv("id", s.id);
      w.kv("name", s.name);
      w.kv("connected", s.connected);
      w.kv("outstanding", s.outstanding);
      w.kv("leases", s.leases);
      w.kv("reattaches", s.reattaches);
      w.kv("last_seen_ms", static_cast<std::int64_t>(s.last_seen_ms));
      w.end_object();
    }
    w.end_array();
    w.key("fabric").value_raw(engine_->stats.to_json());
    w.key("fleet_metrics").begin_object();
    for (const auto& m : engine_->fleet_samples()) w.kv(m.name, m.value);
    w.end_object();
    w.end_object();
    return w.str();
  }

  void on_client_frame(int fd, const Frame& f) {
    if (f.type == FrameType::kStatus) {
      send_json(fd, FrameType::kStatus, status_json());
      return;
    }
    if (f.type != FrameType::kSubmit) return;  // PROGRESS etc. are ours
    Submit s;
    std::string err;
    if (!decode_submit(f.payload, &s)) {
      err = "malformed SUBMIT payload";
    }
    const std::string id = "job-" + std::to_string(++job_seq_);
    std::optional<campaign::CampaignSpec> spec;
    if (err.empty()) {
      spec = campaign::parse_spec(s.spec_text, &err);
    }
    if (!spec) {
      if (stats_ != nullptr) ++stats_->jobs_rejected;
      log(id + " rejected: " + err);
      send_json(fd, FrameType::kDone, done_error_json(id, err));
      return;
    }
    if (s.timeout_ms >= 0) spec->timeout_ms = s.timeout_ms;
    if (s.max_events >= 0) {
      spec->max_sim_events = static_cast<std::uint64_t>(s.max_events);
    }
    auto job = std::make_unique<Job>();
    job->id = id;
    job->client_fd = fd;
    job->submit = std::move(s);
    job->spec = std::move(*spec);
    if (stats_ != nullptr) ++stats_->jobs_accepted;
    log(id + " queued: " + job->spec.name +
        (job->submit.explore > 0 ? " (explore)" : " (campaign)") +
        (job->submit.max_workers > 0
             ? ", max_workers " + std::to_string(job->submit.max_workers)
             : ""));
    queue_.push_back(std::move(job));
    maybe_start();
  }

  void on_client_closed(int fd) {
    // The job's in-flight cells outlive the client, but nobody is waiting
    // for the rest: cancel the still-queued cells (they come back
    // index == -1) and stop a search job at its next generation.
    for (auto& jp : active_) {
      Job* job = jp.get();
      if (job->client_fd != fd) continue;
      job->client_fd = -1;
      {
        std::lock_guard<std::mutex> lock(job->bridge.mu);
        job->bridge.stop = true;
      }
      if (job->dispatching && job->engine_job >= 0) {
        engine_->cancel_queued(job->engine_job);
      }
      log(job->id + " client gone: cancelling queued cells");
    }
    // Queued never-started jobs from that client are dropped outright.
    for (auto it = queue_.begin(); it != queue_.end();) {
      if ((*it)->client_fd == fd) {
        log((*it)->id + " dropped: client gone before start");
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void maybe_start() {
    while (!draining_ &&
           static_cast<int>(active_.size()) < opts_.max_active &&
           !queue_.empty()) {
      active_.push_back(std::move(queue_.front()));
      queue_.pop_front();
      Job* job = active_.back().get();
      if (stats_ != nullptr) {
        stats_->peak_active =
            std::max(stats_->peak_active, static_cast<int>(active_.size()));
      }
      log(job->id + " started (" + std::to_string(active_.size()) +
          " active)");
      job->thread = std::thread(job->submit.explore > 0 ? run_search_job
                                                        : run_campaign_job,
                                job);
    }
  }

  /// One scheduling pass over every active job: relay progress, pick up
  /// posted batches, finish completed jobs, start queued ones.
  void pump() {
    for (auto& jp : active_) {
      Job* job = jp.get();
      std::vector<std::string> progress;
      const std::vector<campaign::RunCell>* batch = nullptr;
      const std::vector<std::string>* keys = nullptr;
      {
        std::lock_guard<std::mutex> lock(job->bridge.mu);
        progress.swap(job->bridge.progress);
        if (job->bridge.batch != nullptr && !job->bridge.batch_done &&
            !job->dispatching) {
          batch = job->bridge.batch;
          keys = job->bridge.batch_keys;
        }
      }
      for (const std::string& line : progress) {
        send_json(job->client_fd, FrameType::kProgress, line);
      }
      if (batch != nullptr) dispatch(job, batch, keys);
    }

    // Finish pass (separate loop: finishing erases from active_).
    for (std::size_t i = active_.size(); i-- > 0;) {
      bool finished = false;
      {
        std::lock_guard<std::mutex> lock(active_[i]->bridge.mu);
        finished = active_[i]->finished;
      }
      if (finished) finish_job(i);
    }
    maybe_start();
  }

  void dispatch(Job* job, const std::vector<campaign::RunCell>* batch,
                const std::vector<std::string>* keys) {
    job->dispatching = true;
    job->keys = keys;
    job->staged.assign(batch->size(), campaign::RunResult{});
    job->done_cells = 0;
    job->total_cells = static_cast<int>(batch->size());
    job->engine_job = engine_->add_batch(
        batch,
        [this, job](int slot, campaign::RunResult r) {
          ++job->done_cells;
          if (r.errored()) {
            ++job->error;
          } else if (r.pass) {
            ++job->pass;
          } else {
            ++job->fail;
          }
          const auto s = static_cast<std::size_t>(slot);
          job->staged[s] = std::move(r);
          send_json(job->client_fd, FrameType::kProgress,
                    progress_json(*job, job->staged[s]));
          // Stream the finished record to the client as one incremental
          // journal chunk, keyed by content hash: a client killed now
          // already holds this record and can resume past it.
          if (job->keys != nullptr && job->client_fd >= 0) {
            const std::string& key = (*job->keys)[s];
            const std::string line = "{\"key\":\"" + key + "\",\"record\":" +
                                     campaign::record_json(job->staged[s]) +
                                     "}\n";
            engine_->send_to_client(
                job->client_fd,
                encode_frame(FrameType::kArtifact,
                             encode_artifact("journal", line, key)));
          }
        },
        [job] {
          std::lock_guard<std::mutex> lock(job->bridge.mu);
          job->bridge.batch_results = std::move(job->staged);
          job->bridge.batch_done = true;
          job->dispatching = false;
          job->engine_job = -1;
          job->keys = nullptr;
          job->bridge.cv.notify_all();
        },
        job->submit.max_workers);
  }

  /// The metrics artifact, fleet edition: the job's deterministic per-cell
  /// merge (byte-identical to any single-process run of the same cells)
  /// plus side-channel sections only the engine knows — FabricStats, the
  /// fleet-merged worker registries, and a per-worker breakdown.
  [[nodiscard]] std::string metrics_artifact(const Job& job) const {
    campaign::json::Writer mw;
    mw.begin_object();
    mw.kv("campaign", job.spec.name);
    mw.kv("cells", job.cells_planned);
    mw.kv("cells_measured", job.cells_measured);
    mw.key("metrics").begin_object();
    for (const auto& [name, m] : job.cell_metrics) mw.kv(name, m.value);
    mw.end_object();
    mw.key("fabric").value_raw(engine_->stats.to_json());
    mw.key("fleet").begin_object();
    mw.key("merged").begin_object();
    for (const auto& m : engine_->fleet_samples()) mw.kv(m.name, m.value);
    mw.end_object();
    mw.key("workers").begin_object();
    for (const auto& [id, samples] : engine_->worker_stats()) {
      mw.key(id).begin_object();
      for (const auto& m : samples) mw.kv(m.name, m.value);
      mw.end_object();
    }
    mw.end_object();
    mw.end_object();
    mw.end_object();
    return mw.str() + "\n";
  }

  void finish_job(std::size_t i) {
    Job* job = active_[i].get();
    job->thread.join();
    if (job->wants_metrics) {
      job->artifacts.emplace_back("metrics", metrics_artifact(*job));
    }
    for (const auto& [name, bytes] : job->artifacts) {
      if (job->client_fd >= 0) {
        engine_->send_to_client(
            job->client_fd,
            encode_frame(FrameType::kArtifact, encode_artifact(name, bytes)));
      }
    }
    send_json(job->client_fd, FrameType::kDone, job->done_json);
    log(job->id + " finished");
    if (stats_ != nullptr) ++stats_->jobs_completed;
    active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
  }

  /// Shutdown with jobs in flight: release every job thread with whatever
  /// results exist (unfinished slots keep index == -1), then finish them
  /// so each client at least gets a DONE.
  void drain_all(const std::string& reason) {
    draining_ = true;
    while (!active_.empty()) {
      bool all_finished = true;
      for (auto& jp : active_) {
        Job* job = jp.get();
        std::lock_guard<std::mutex> lock(job->bridge.mu);
        job->bridge.stop = true;
        if (job->bridge.batch != nullptr && !job->bridge.batch_done) {
          job->bridge.batch_results = std::move(job->staged);
          job->bridge.batch_results.resize(job->bridge.batch->size());
          job->bridge.batch_done = true;
          job->dispatching = false;
          job->engine_job = -1;
          job->keys = nullptr;
        }
        job->bridge.cv.notify_all();
        if (!job->finished) all_finished = false;
      }
      if (!all_finished) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      log("drained " + std::to_string(active_.size()) + " job(s): " + reason);
      while (!active_.empty()) finish_job(active_.size() - 1);
    }
    // Queued jobs never started; tell their clients.
    while (!queue_.empty()) {
      auto j = std::move(queue_.front());
      queue_.pop_front();
      send_json(j->client_fd, FrameType::kDone,
                done_error_json(j->id, reason));
    }
  }

  ServiceOptions opts_;
  ServiceStats* stats_;
  ServiceStats own_stats_;  // backing store when the caller passed none
  std::unique_ptr<Engine> engine_;
  std::deque<std::unique_ptr<Job>> queue_;
  std::vector<std::unique_ptr<Job>> active_;
  bool draining_ = false;
  int job_seq_ = 0;
};

}  // namespace

int run_service(Listener* listener, const ServiceOptions& opts,
                ServiceStats* stats) {
  Service service(listener, opts, stats);
  return service.run();
}

}  // namespace pfi::fabric
