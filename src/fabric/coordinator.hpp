// Socket coordinator: leases cells to worker processes, splices results.
//
// The Engine is the single-threaded event core shared by the one-shot
// coordinator (`pfi_campaign --workers N`) and the campaign-as-a-service
// daemon (service.hpp). It owns the listening socket and every connection,
// speaks the worker side of the wire protocol (wire.hpp), and dispatches
// any number of concurrent *batches* (jobs) over one worker pool:
//
//   * pull-based work stealing — an idle worker sends LEASE {want}; the
//     request parks until cells exist, so fast workers drain the queue and
//     a late joiner is handed the next available (or requeued) cells.
//   * fair multi-job scheduling — each grant serves exactly one job,
//     chosen round-robin across jobs with queued cells, subject to the
//     job's max_workers quota (distinct workers holding its leases).
//   * authentication — when a token is configured, a HELLO whose token
//     fails the constant-time compare gets a BYE and no state of any
//     kind; TCP listeners can additionally allowlist peer addresses.
//   * reconnect-and-resume — a worker presents a stable id on HELLO;
//     losing the link *detaches* it (leases stay put, the worker keeps
//     computing) and a reconnect within reconnect_grace_ms reattaches it,
//     finished results re-sent by the worker deduped by (job, slot,
//     epoch). Only grace expiry requeues, and only that counts as a lost
//     worker.
//   * results are deduped by slot — if a "dead" worker's results race its
//     replacement's, the first to arrive wins; since records are pure
//     functions of the cell, both copies are byte-identical anyway.
//
// Determinism: the coordinator never reorders anything that reaches a
// report. Results land in their dispatch slot; run_fabric() returns the
// same slot-ordered vector run_cells() would have, so everything
// downstream (records, journal, metrics, summary) is byte-identical to a
// single-process run at any worker count — link flaps included
// (test-asserted).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "fabric/flight.hpp"
#include "fabric/socket.hpp"
#include "fabric/wire.hpp"
#include "obs/metrics.hpp"

namespace pfi::fabric {

struct FabricStats {
  int workers_joined = 0;      // completed HELLO handshakes (fresh ids only)
  int workers_lost = 0;        // reconnect grace expired; leases requeued
  int links_dropped = 0;       // connections lost (worker may reattach)
  int workers_reattached = 0;  // reconnects resumed by stable worker id
  int leases_granted = 0;
  int cells_requeued = 0;      // slots re-queued from lost workers
  int duplicate_results = 0;   // raced/re-sent results dropped by dedupe
  int stale_results = 0;       // accepted results from a superseded epoch
  int version_rejected = 0;    // HELLOs refused by version negotiation
  int auth_rejected = 0;       // HELLOs refused by token mismatch
  int addr_rejected = 0;       // TCP peers refused by the allowlist
  int handshake_timeouts = 0;  // pre-HELLO connections dropped as stalled
  int unknown_frames = 0;      // well-framed types we ignored (v2/v4 peers)

  /// One flat JSON object, keys sorted by name — the form `--metrics-out`
  /// and the daemon's metrics artifact embed under "fabric".
  [[nodiscard]] std::string to_json() const;
};

/// A point-in-time view of one worker's durable state, for STATUS replies
/// and the fleet progress line. Wall-clock field (`last_seen_ms`) included:
/// this is side-channel output by construction.
struct WorkerSnapshot {
  std::string id;
  std::string name;
  bool connected = false;  // live link right now (vs detached-in-grace)
  int outstanding = 0;     // leased cells without a result yet
  int leases = 0;          // grants ever sent to this id
  int reattaches = 0;      // reconnects resumed under this id
  long long last_seen_ms = 0;  // ms since last byte (or since detach)
};

class Engine {
 public:
  struct Options {
    /// Max cells per LEASE grant (a worker's `want` caps it further).
    int lease_batch = 8;
    /// A worker silent this long is dead; the link drops and the grace
    /// clock starts. Workers heartbeat every ~500 ms even while computing.
    int dead_after_ms = 5000;
    /// How long a detached worker (link lost) may stay away before its
    /// leases requeue and its id is forgotten. -1 = use dead_after_ms.
    int reconnect_grace_ms = -1;
    /// Coordinator -> worker liveness beats. A parked worker otherwise
    /// reads nothing and cannot tell "no work yet" from a silently dead
    /// link; regular beats let its idle detector fire in seconds instead
    /// of TCP's many-minute retransmission timeout. 0 = off.
    int heartbeat_ms = 500;
    /// A connection that has not completed HELLO within this window of
    /// being accepted is dropped, so unauthenticated peers cannot park
    /// fds (or trickle bytes) indefinitely. <= 0 = never.
    int handshake_timeout_ms = 2000;
    /// Shared secret; "" = no authentication. A HELLO that fails the
    /// constant-time compare is BYEd before any state exists.
    std::string token;
    /// Peer addresses (dotted quads) allowed to connect over TCP; empty =
    /// all. AF_UNIX peers ("unix") always pass — filesystem permissions
    /// gate those.
    std::vector<std::string> allow;
    /// Accept HELLO {role=client} connections (the daemon). When false,
    /// clients are turned away with BYE.
    bool accept_clients = false;
    std::function<void(const std::string&)> on_log;
    /// Daemon hooks: a decoded frame from a handshaken client / a client
    /// connection that went away.
    std::function<void(int fd, const Frame&)> on_client_frame;
    std::function<void(int fd)> on_client_closed;
    /// Observability plane (both optional, both side-channel only):
    /// control-plane events land in `flight`, stage timings (per-slot
    /// queue wait) in `obs`. Neither influences dispatch or results.
    FlightRecorder* flight = nullptr;
    obs::Registry* obs = nullptr;
    /// Fires per accepted result with the worker that computed it — the
    /// fleet progress line's per-worker throughput feed.
    std::function<void(const std::string& worker_id)> on_worker_result;
  };

  Engine(Listener* listener, Options opts);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Dispatch `cells` as a new job (kept alive by the caller until the
  /// batch finishes). on_cell fires once per slot as results arrive
  /// (arrival order); on_done fires from within step() once every slot has
  /// a result. max_workers > 0 caps how many distinct workers may hold
  /// this job's leases at once. Returns the job id carried by its leases.
  int add_batch(const std::vector<campaign::RunCell>* cells,
                std::function<void(int slot, campaign::RunResult)> on_cell,
                std::function<void()> on_done, int max_workers = 0);

  /// Single-batch compatibility shim over add_batch().
  void set_batch(const std::vector<campaign::RunCell>* cells,
                 std::function<void(int slot, campaign::RunResult)> on_cell,
                 std::function<void()> on_done) {
    add_batch(cells, std::move(on_cell), std::move(on_done));
  }

  [[nodiscard]] bool batch_active() const { return !batches_.empty(); }
  [[nodiscard]] int active_batches() const {
    return static_cast<int>(batches_.size());
  }

  /// Drop every still-queued (never leased, not requeue-pending) slot of
  /// `job`: the slots are marked filled with no on_cell call, so the job
  /// completes with those results absent (index == -1 downstream). Cells
  /// a worker is already computing are left to finish.
  void cancel_queued(int job);

  /// One event-loop iteration: poll (≤ timeout_ms), accept, read frames,
  /// detect dead workers, grant parked leases, fire completion.
  void step(int timeout_ms);

  /// BYE every connection and close it. Idempotent.
  void shutdown(const std::string& reason);

  [[nodiscard]] int worker_count() const;

  /// Chaos hook: close the link of one connected worker without telling
  /// it (simulates a network partition — the worker must notice, back
  /// off, and reconnect). Returns true if a link was severed.
  bool sever_worker_link();

  /// Send raw frame bytes to a client connection (daemon replies). False
  /// if the fd is gone or the write failed (the conn is then dropped).
  bool send_to_client(int fd, const std::string& frame_bytes);

  /// Every worker id the engine currently remembers (connected or within
  /// its reconnect grace), sorted by id — STATUS replies iterate this.
  [[nodiscard]] std::vector<WorkerSnapshot> worker_snapshots() const;

  /// Latest STATS snapshot per worker id. Snapshots are cumulative, so
  /// each entry *replaces* its predecessor; a worker that never shipped
  /// one (v2 peer, or died early) is simply absent.
  [[nodiscard]] const std::map<std::string, std::vector<obs::MetricSample>>&
  worker_stats() const {
    return worker_stats_;
  }

  /// Valid STATS frames accepted, ever. run_fabric's end-of-run drain
  /// steps until this stops advancing (the fleet's last snapshots landed).
  [[nodiscard]] std::uint64_t stats_frames() const { return stats_frames_; }

  /// Fleet-wide merge: every worker's latest STATS folded together with
  /// the coordinator's own registry (when Options.obs is set) via
  /// merge_samples, sorted by name.
  [[nodiscard]] std::vector<obs::MetricSample> fleet_samples() const;

  FabricStats stats;

 private:
  struct Conn {
    int fd = -1;
    FrameReader reader;
    enum class Role { kUnknown, kWorker, kClient } role = Role::kUnknown;
    std::string name;
    std::string worker_id;         // key into workers_ once handshaken
    std::uint32_t version = kProtocolVersion;  // negotiated on HELLO
    int pending_want = 0;          // parked LEASE request
    std::chrono::steady_clock::time_point last_seen;
    /// Accept time: the handshake deadline anchors here, so a pre-auth
    /// peer trickling bytes cannot keep resetting its clock.
    std::chrono::steady_clock::time_point accepted_at;
  };

  /// A job's dispatch state. `cells` stays owned by the caller.
  struct Batch {
    const std::vector<campaign::RunCell>* cells = nullptr;
    std::deque<int> queue;         // slots awaiting lease
    std::vector<char> filled;
    std::vector<std::int64_t> epoch;  // latest grant epoch per slot
    /// When each slot last entered the queue — feeds the
    /// fabric.coord.queue_wait_us histogram at grant time. Side channel:
    /// never read for dispatch decisions.
    std::vector<std::chrono::steady_clock::time_point> enqueued_at;
    std::size_t remaining = 0;
    int max_workers = 0;           // 0 = no quota
    std::function<void(int, campaign::RunResult)> on_cell;
    std::function<void()> on_done;
  };

  /// A worker's durable identity: survives link loss until the reconnect
  /// grace expires. fd == -1 means detached (no live connection).
  struct WorkerState {
    std::string name;
    int fd = -1;
    /// (job, slot) -> epoch of the grant this worker holds.
    std::map<std::pair<int, int>, std::int64_t> outstanding;
    std::chrono::steady_clock::time_point detached_at;
    int leases = 0;      // grants ever sent to this id
    int reattaches = 0;  // reconnects resumed under this id
  };

  [[nodiscard]] std::size_t find_conn(int fd) const;
  void accept_pending();
  void service_conn(int fd);       // read + dispatch; drops dead conns
  bool handle_frame(std::size_t i, const Frame& f);
  bool handle_hello(std::size_t i, const Hello& h);
  void drop_conn(std::size_t i, bool requeue);
  void forget_worker(const std::string& id);  // grace expired: requeue
  void grant_leases();
  void reap_dead();
  void beat_workers();
  [[nodiscard]] int pick_job_for(const std::string& worker_id);
  [[nodiscard]] int lease_holders(int job) const;

  Listener* listener_;
  Options opts_;
  std::vector<Conn> conns_;

  std::map<int, Batch> batches_;             // job id -> dispatch state
  std::map<std::string, WorkerState> workers_;
  /// worker id -> latest cumulative STATS snapshot (v3 workers only).
  std::map<std::string, std::vector<obs::MetricSample>> worker_stats_;
  std::uint64_t stats_frames_ = 0;
  std::vector<int> rr_jobs_;                 // round-robin ring of job ids
  std::size_t rr_pos_ = 0;
  int job_seq_ = 0;
  int worker_seq_ = 0;
  std::int64_t epoch_seq_ = 0;
  std::string beat_frame_;  // pre-encoded coordinator -> worker heartbeat
  std::chrono::steady_clock::time_point last_beat_;
};

/// One-shot coordinator options (`pfi_campaign --workers N`).
struct FabricOptions {
  int lease_batch = 8;
  int dead_after_ms = 5000;
  /// Detached-worker grace before requeue; -1 = dead_after_ms.
  int reconnect_grace_ms = -1;
  /// Coordinator -> worker liveness beat interval (0 = off).
  int heartbeat_ms = 500;
  /// Shared secret workers must present ("" = no auth).
  std::string token;
  /// Abort (returning the partial result vector) when no worker has been
  /// connected for this long while work remains. 0 = wait forever.
  int no_worker_timeout_ms = 0;
  /// Chaos: sever one worker's link after every N accepted results
  /// (0 = never). Proves reconnect-and-resume keeps reports byte-identical.
  int flap_every = 0;
  /// Completion-order stream, same contract as ExecutorOptions::on_result.
  std::function<void(const campaign::RunResult&)> on_result;
  /// Slot-order stream, same contract as ExecutorOptions::on_result_ordered.
  std::function<void(const campaign::RunResult&)> on_result_ordered;
  std::function<bool()> should_stop;
  std::function<void(const std::string&)> on_log;
  /// Observability plane (all optional, all side-channel): control-plane
  /// events, coordinator stage timings, per-worker STATS snapshots after
  /// the run, and a per-result worker-id feed for the fleet progress line.
  FlightRecorder* flight = nullptr;
  obs::Registry* obs = nullptr;
  std::map<std::string, std::vector<obs::MetricSample>>* worker_stats_out =
      nullptr;
  std::function<void(const std::string& worker_id)> on_result_worker;
};

/// Run `cells` over whatever workers connect to `listener` until every cell
/// has a result (or should_stop / the no-worker timeout fires). Returns the
/// slot-ordered result vector — byte-for-byte what run_cells() returns for
/// the same cells; unfinished slots keep index == -1.
std::vector<campaign::RunResult> run_fabric(Listener* listener,
                                            const std::vector<campaign::RunCell>& cells,
                                            const FabricOptions& opts,
                                            FabricStats* stats = nullptr);

}  // namespace pfi::fabric
