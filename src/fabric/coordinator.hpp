// Socket coordinator: leases cells to worker processes, splices results.
//
// The Engine is the single-threaded event core shared by the one-shot
// coordinator (`pfi_campaign --workers N`) and the campaign-as-a-service
// daemon (service.hpp). It owns the listening socket and every connection,
// speaks the worker side of the wire protocol (wire.hpp), and dispatches
// one *batch* of cells at a time:
//
//   * pull-based work stealing — an idle worker sends LEASE {want}; the
//     request parks until cells exist, so fast workers drain the queue and
//     a late joiner is handed the next available (or requeued) cells.
//   * lost leases are requeued — a worker that disconnects, says BYE, or
//     goes silent past dead_after_ms has its outstanding slots pushed back
//     to the front of the queue for the survivors.
//   * results are deduped by slot — if a "dead" worker's results race its
//     replacement's, the first to arrive wins; since records are pure
//     functions of the cell, both copies are byte-identical anyway.
//
// Determinism: the coordinator never reorders anything that reaches a
// report. Results land in their dispatch slot; run_fabric() returns the
// same slot-ordered vector run_cells() would have, so everything
// downstream (records, journal, metrics, summary) is byte-identical to a
// single-process run at any worker count (test-asserted).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "fabric/socket.hpp"
#include "fabric/wire.hpp"

namespace pfi::fabric {

struct FabricStats {
  int workers_joined = 0;      // completed HELLO handshakes
  int workers_lost = 0;        // disconnected / timed out with work or not
  int leases_granted = 0;
  int cells_requeued = 0;      // slots re-queued from lost workers
  int duplicate_results = 0;   // raced results dropped by slot dedupe
  int version_rejected = 0;    // HELLOs refused by version negotiation
};

class Engine {
 public:
  struct Options {
    /// Max cells per LEASE grant (a worker's `want` caps it further).
    int lease_batch = 8;
    /// A worker silent this long is dead; its leases requeue. Workers
    /// heartbeat every ~500 ms even while computing.
    int dead_after_ms = 5000;
    /// Accept HELLO {role=client} connections (the daemon). When false,
    /// clients are turned away with BYE.
    bool accept_clients = false;
    std::function<void(const std::string&)> on_log;
    /// Daemon hooks: a decoded frame from a handshaken client / a client
    /// connection that went away.
    std::function<void(int fd, const Frame&)> on_client_frame;
    std::function<void(int fd)> on_client_closed;
  };

  Engine(Listener* listener, Options opts);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Dispatch `cells` (kept alive by the caller until the batch finishes).
  /// on_cell fires once per slot as results arrive (arrival order);
  /// on_done fires from within step() once every slot has a result.
  /// Only one batch may be active at a time.
  void set_batch(const std::vector<campaign::RunCell>* cells,
                 std::function<void(int slot, campaign::RunResult)> on_cell,
                 std::function<void()> on_done);
  [[nodiscard]] bool batch_active() const { return cells_ != nullptr; }

  /// One event-loop iteration: poll (≤ timeout_ms), accept, read frames,
  /// detect dead workers, grant parked leases, fire completion.
  void step(int timeout_ms);

  /// BYE every connection and close it. Idempotent.
  void shutdown(const std::string& reason);

  [[nodiscard]] int worker_count() const;

  /// Send raw frame bytes to a client connection (daemon replies). False
  /// if the fd is gone or the write failed (the conn is then dropped).
  bool send_to_client(int fd, const std::string& frame_bytes);

  FabricStats stats;

 private:
  struct Conn {
    int fd = -1;
    FrameReader reader;
    enum class Role { kUnknown, kWorker, kClient } role = Role::kUnknown;
    std::string name;
    int pending_want = 0;          // parked LEASE request
    std::set<int> outstanding;     // leased slots awaiting results
    std::chrono::steady_clock::time_point last_seen;
  };

  [[nodiscard]] std::size_t find_conn(int fd) const;
  void accept_pending();
  void service_conn(int fd);       // read + dispatch; drops dead conns
  bool handle_frame(std::size_t i, const Frame& f);
  void drop_conn(std::size_t i, bool requeue);
  void requeue_outstanding(Conn* c);
  void grant_leases();
  void reap_dead();

  Listener* listener_;
  Options opts_;
  std::vector<Conn> conns_;

  const std::vector<campaign::RunCell>* cells_ = nullptr;
  std::deque<int> queue_;          // slots awaiting lease
  std::vector<char> filled_;
  std::size_t remaining_ = 0;
  std::function<void(int, campaign::RunResult)> on_cell_;
  std::function<void()> on_done_;
};

/// One-shot coordinator options (`pfi_campaign --workers N`).
struct FabricOptions {
  int lease_batch = 8;
  int dead_after_ms = 5000;
  /// Abort (returning the partial result vector) when no worker has been
  /// connected for this long while work remains. 0 = wait forever.
  int no_worker_timeout_ms = 0;
  /// Completion-order stream, same contract as ExecutorOptions::on_result.
  std::function<void(const campaign::RunResult&)> on_result;
  /// Slot-order stream, same contract as ExecutorOptions::on_result_ordered.
  std::function<void(const campaign::RunResult&)> on_result_ordered;
  std::function<bool()> should_stop;
  std::function<void(const std::string&)> on_log;
};

/// Run `cells` over whatever workers connect to `listener` until every cell
/// has a result (or should_stop / the no-worker timeout fires). Returns the
/// slot-ordered result vector — byte-for-byte what run_cells() returns for
/// the same cells; unfinished slots keep index == -1.
std::vector<campaign::RunResult> run_fabric(Listener* listener,
                                            const std::vector<campaign::RunCell>& cells,
                                            const FabricOptions& opts,
                                            FabricStats* stats = nullptr);

}  // namespace pfi::fabric
