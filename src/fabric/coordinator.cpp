#include "fabric/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace pfi::fabric {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

int ms_since(Clock::time_point then) {
  return static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              Clock::now() - then)
                              .count());
}

}  // namespace

Engine::Engine(Listener* listener, Options opts)
    : listener_(listener), opts_(std::move(opts)) {
  if (opts_.lease_batch < 1) opts_.lease_batch = 1;
}

Engine::~Engine() { shutdown(""); }

void Engine::set_batch(
    const std::vector<campaign::RunCell>* cells,
    std::function<void(int slot, campaign::RunResult)> on_cell,
    std::function<void()> on_done) {
  cells_ = cells;
  on_cell_ = std::move(on_cell);
  on_done_ = std::move(on_done);
  queue_.clear();
  filled_.assign(cells->size(), 0);
  remaining_ = cells->size();
  for (std::size_t i = 0; i < cells->size(); ++i) {
    queue_.push_back(static_cast<int>(i));
  }
}

int Engine::worker_count() const {
  int n = 0;
  for (const Conn& c : conns_) {
    if (c.role == Conn::Role::kWorker) ++n;
  }
  return n;
}

std::size_t Engine::find_conn(int fd) const {
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i].fd == fd) return i;
  }
  return kNone;
}

void Engine::accept_pending() {
  const int fd = listener_->accept_one();
  if (fd < 0) return;
  Conn c;
  c.fd = fd;
  c.last_seen = Clock::now();
  conns_.push_back(std::move(c));
}

void Engine::requeue_outstanding(Conn* c) {
  // Front of the queue: a lost lease should complete before untouched work
  // so the campaign's tail latency doesn't double on every worker death.
  for (auto it = c->outstanding.rbegin(); it != c->outstanding.rend(); ++it) {
    if (filled_.empty() || filled_[static_cast<std::size_t>(*it)] != 0) {
      continue;  // raced: the result arrived before the death verdict
    }
    queue_.push_front(*it);
    ++stats.cells_requeued;
  }
  c->outstanding.clear();
}

void Engine::drop_conn(std::size_t i, bool requeue) {
  Conn& c = conns_[i];
  if (c.role == Conn::Role::kWorker) {
    ++stats.workers_lost;
    if (requeue) requeue_outstanding(&c);
  }
  const bool was_client = c.role == Conn::Role::kClient;
  const int fd = c.fd;
  close(c.fd);
  conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
  if (was_client && opts_.on_client_closed) opts_.on_client_closed(fd);
}

bool Engine::handle_frame(std::size_t i, const Frame& f) {
  Conn& c = conns_[i];
  if (c.role == Conn::Role::kUnknown) {
    Hello h;
    if (f.type != FrameType::kHello || !decode_hello(f.payload, &h)) {
      return false;  // protocol violation: drop
    }
    if (h.version != kProtocolVersion) {
      ++stats.version_rejected;
      const std::string bye = encode_frame(
          FrameType::kBye,
          encode_bye("version mismatch: peer v" + std::to_string(h.version) +
                     ", coordinator v" + std::to_string(kProtocolVersion)));
      send_all(c.fd, bye.data(), bye.size());
      return false;
    }
    if (h.role == "worker") {
      c.role = Conn::Role::kWorker;
      c.name = h.name;
      ++stats.workers_joined;
      if (opts_.on_log) {
        opts_.on_log("worker joined: " + (h.name.empty() ? "?" : h.name));
      }
    } else if (h.role == "client" && opts_.accept_clients) {
      c.role = Conn::Role::kClient;
      c.name = h.name;
    } else {
      const std::string bye = encode_frame(
          FrameType::kBye, encode_bye("role not accepted here: " + h.role));
      send_all(c.fd, bye.data(), bye.size());
      return false;
    }
    Hello reply;
    reply.role = "coordinator";
    const std::string out =
        encode_frame(FrameType::kHello, encode_hello(reply));
    return send_all(c.fd, out.data(), out.size());
  }

  if (c.role == Conn::Role::kClient) {
    if (f.type == FrameType::kBye) return false;
    if (opts_.on_client_frame) opts_.on_client_frame(c.fd, f);
    return true;
  }

  // Worker frames.
  switch (f.type) {
    case FrameType::kLease: {
      int want = 0;
      if (!decode_lease_request(f.payload, &want)) return false;
      c.pending_want = want;
      return true;
    }
    case FrameType::kResult: {
      int slot = -1;
      campaign::RunResult r;
      if (!decode_result(f.payload, &slot, &r)) return false;
      c.outstanding.erase(slot);
      if (cells_ == nullptr || slot < 0 ||
          static_cast<std::size_t>(slot) >= filled_.size() ||
          filled_[static_cast<std::size_t>(slot)] != 0) {
        ++stats.duplicate_results;  // raced or stale: first result won
        return true;
      }
      filled_[static_cast<std::size_t>(slot)] = 1;
      --remaining_;
      if (on_cell_) on_cell_(slot, std::move(r));
      return true;
    }
    case FrameType::kHeartbeat:
      return true;  // last_seen already refreshed by the read itself
    case FrameType::kBye:
      return false;  // graceful leave: drop (outstanding requeues)
    default:
      return false;  // a worker has no business sending anything else
  }
}

void Engine::service_conn(int fd) {
  std::size_t i = find_conn(fd);
  if (i == kNone) return;
  char buf[65536];
  const ssize_t n = recv(fd, buf, sizeof buf, 0);
  if (n < 0) {
    if (errno != EINTR && errno != EAGAIN) drop_conn(i, /*requeue=*/true);
    return;
  }
  if (n == 0) {  // EOF: the peer is gone
    drop_conn(i, /*requeue=*/true);
    return;
  }
  conns_[i].last_seen = Clock::now();
  conns_[i].reader.feed(buf, static_cast<std::size_t>(n));
  // Frame handlers (and the daemon callbacks they invoke) may drop other
  // connections, shifting indices — re-locate by fd every iteration.
  Frame f;
  for (;;) {
    i = find_conn(fd);
    if (i == kNone) return;  // dropped by a handler side effect
    if (!conns_[i].reader.next(&f)) {
      if (conns_[i].reader.corrupt()) drop_conn(i, /*requeue=*/true);
      return;
    }
    if (!handle_frame(i, f)) {
      i = find_conn(fd);
      if (i != kNone) drop_conn(i, /*requeue=*/true);
      return;
    }
  }
}

void Engine::reap_dead() {
  for (std::size_t i = conns_.size(); i-- > 0;) {
    Conn& c = conns_[i];
    if (c.role != Conn::Role::kWorker) continue;
    if (ms_since(c.last_seen) > opts_.dead_after_ms) {
      if (opts_.on_log) {
        opts_.on_log("worker lost (silent " +
                     std::to_string(opts_.dead_after_ms) + " ms): " +
                     (c.name.empty() ? "?" : c.name));
      }
      drop_conn(i, /*requeue=*/true);
    }
  }
}

void Engine::grant_leases() {
  if (cells_ == nullptr) return;
  for (std::size_t i = conns_.size(); i-- > 0;) {
    if (queue_.empty()) break;
    Conn& c = conns_[i];
    if (c.role != Conn::Role::kWorker || c.pending_want <= 0) continue;
    const int take = std::min<int>(
        {c.pending_want, opts_.lease_batch, static_cast<int>(queue_.size())});
    std::vector<int> slots;
    std::vector<campaign::RunCell> cells;
    slots.reserve(static_cast<std::size_t>(take));
    cells.reserve(static_cast<std::size_t>(take));
    for (int k = 0; k < take; ++k) {
      const int slot = queue_.front();
      queue_.pop_front();
      slots.push_back(slot);
      cells.push_back((*cells_)[static_cast<std::size_t>(slot)]);
    }
    const std::string out =
        encode_frame(FrameType::kLease, encode_lease_grant(slots, cells));
    if (!send_all(c.fd, out.data(), out.size())) {
      // Write failed: the worker is gone; its would-be lease goes back.
      for (auto it = slots.rbegin(); it != slots.rend(); ++it) {
        queue_.push_front(*it);
      }
      drop_conn(i, /*requeue=*/true);
      continue;
    }
    c.outstanding.insert(slots.begin(), slots.end());
    c.pending_want = 0;
    ++stats.leases_granted;
  }
}

void Engine::step(int timeout_ms) {
  std::vector<struct pollfd> pfds;
  pfds.reserve(conns_.size() + 1);
  pfds.push_back({listener_->fd(), POLLIN, 0});
  for (const Conn& c : conns_) pfds.push_back({c.fd, POLLIN, 0});

  const int pr =
      poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
  if (pr > 0) {
    if ((pfds[0].revents & POLLIN) != 0) accept_pending();
    for (std::size_t k = 1; k < pfds.size(); ++k) {
      if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        service_conn(pfds[k].fd);
      }
    }
  }
  reap_dead();
  grant_leases();
  if (cells_ != nullptr && remaining_ == 0) {
    // Clear the batch *before* the callback: on_done may set a new one.
    cells_ = nullptr;
    on_cell_ = nullptr;
    auto done = std::move(on_done_);
    on_done_ = nullptr;
    if (done) done();
  }
}

void Engine::shutdown(const std::string& reason) {
  const std::string bye = encode_frame(FrameType::kBye, encode_bye(reason));
  for (Conn& c : conns_) {
    send_all(c.fd, bye.data(), bye.size());
    close(c.fd);
  }
  conns_.clear();
  cells_ = nullptr;
  on_cell_ = nullptr;
  on_done_ = nullptr;
}

bool Engine::send_to_client(int fd, const std::string& frame_bytes) {
  const std::size_t i = find_conn(fd);
  if (i == kNone || conns_[i].role != Conn::Role::kClient) return false;
  if (send_all(fd, frame_bytes.data(), frame_bytes.size())) return true;
  drop_conn(i, /*requeue=*/false);
  return false;
}

std::vector<campaign::RunResult> run_fabric(
    Listener* listener, const std::vector<campaign::RunCell>& cells,
    const FabricOptions& opts, FabricStats* stats) {
  std::vector<campaign::RunResult> results(cells.size());
  Engine::Options eopts;
  eopts.lease_batch = opts.lease_batch;
  eopts.dead_after_ms = opts.dead_after_ms;
  eopts.on_log = opts.on_log;
  Engine eng(listener, eopts);

  bool done = cells.empty();
  std::vector<char> have(cells.size(), 0);
  std::size_t next_ordered = 0;
  if (!done) {
    eng.set_batch(
        &cells,
        [&](int slot, campaign::RunResult r) {
          const auto s = static_cast<std::size_t>(slot);
          results[s] = std::move(r);
          have[s] = 1;
          if (opts.on_result) opts.on_result(results[s]);
          if (opts.on_result_ordered) {
            while (next_ordered < have.size() && have[next_ordered] != 0) {
              opts.on_result_ordered(results[next_ordered]);
              ++next_ordered;
            }
          }
        },
        [&] { done = true; });
  }

  auto worker_seen = Clock::now();
  bool interrupted = false;
  while (!done) {
    if (opts.should_stop && opts.should_stop()) {
      interrupted = true;
      break;
    }
    eng.step(200);
    if (eng.worker_count() > 0) {
      worker_seen = Clock::now();
    } else if (opts.no_worker_timeout_ms > 0 &&
               ms_since(worker_seen) > opts.no_worker_timeout_ms) {
      if (opts.on_log) {
        opts.on_log("no workers for " +
                    std::to_string(opts.no_worker_timeout_ms) +
                    " ms; abandoning the remaining cells");
      }
      interrupted = true;
      break;
    }
  }
  eng.shutdown(interrupted ? "coordinator interrupted" : "campaign complete");
  if (stats != nullptr) *stats = eng.stats;
  return results;
}

}  // namespace pfi::fabric
