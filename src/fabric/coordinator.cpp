#include "fabric/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "campaign/json.hpp"

namespace pfi::fabric {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kNone = static_cast<std::size_t>(-1);
constexpr int kSlotMin = std::numeric_limits<int>::min();

int ms_since(Clock::time_point then) {
  return static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              Clock::now() - then)
                              .count());
}

}  // namespace

std::string FabricStats::to_json() const {
  campaign::json::Writer w;
  w.begin_object();
  // Keys sorted by name: the object must be byte-stable for a given set of
  // counter values wherever it is embedded.
  w.kv("addr_rejected", addr_rejected);
  w.kv("auth_rejected", auth_rejected);
  w.kv("cells_requeued", cells_requeued);
  w.kv("duplicate_results", duplicate_results);
  w.kv("handshake_timeouts", handshake_timeouts);
  w.kv("leases_granted", leases_granted);
  w.kv("links_dropped", links_dropped);
  w.kv("stale_results", stale_results);
  w.kv("unknown_frames", unknown_frames);
  w.kv("version_rejected", version_rejected);
  w.kv("workers_joined", workers_joined);
  w.kv("workers_lost", workers_lost);
  w.kv("workers_reattached", workers_reattached);
  w.end_object();
  return w.str();
}

Engine::Engine(Listener* listener, Options opts)
    : listener_(listener), opts_(std::move(opts)) {
  if (opts_.lease_batch < 1) opts_.lease_batch = 1;
  if (opts_.reconnect_grace_ms < 0) {
    opts_.reconnect_grace_ms = opts_.dead_after_ms;
  }
  beat_frame_ = encode_frame(FrameType::kHeartbeat, "");
  last_beat_ = Clock::now();
}

Engine::~Engine() { shutdown(""); }

int Engine::add_batch(
    const std::vector<campaign::RunCell>* cells,
    std::function<void(int slot, campaign::RunResult)> on_cell,
    std::function<void()> on_done, int max_workers) {
  const int job = ++job_seq_;
  Batch b;
  b.cells = cells;
  b.filled.assign(cells->size(), 0);
  b.epoch.assign(cells->size(), 0);
  b.enqueued_at.assign(cells->size(), Clock::now());
  b.remaining = cells->size();
  b.max_workers = max_workers;
  b.on_cell = std::move(on_cell);
  b.on_done = std::move(on_done);
  for (std::size_t i = 0; i < cells->size(); ++i) {
    b.queue.push_back(static_cast<int>(i));
  }
  batches_.emplace(job, std::move(b));
  rr_jobs_.push_back(job);
  return job;
}

void Engine::cancel_queued(int job) {
  auto it = batches_.find(job);
  if (it == batches_.end()) return;
  Batch& b = it->second;
  for (const int slot : b.queue) {
    const auto s = static_cast<std::size_t>(slot);
    if (b.filled[s] == 0) {
      b.filled[s] = 1;
      --b.remaining;
    }
  }
  b.queue.clear();
}

int Engine::worker_count() const {
  int n = 0;
  for (const Conn& c : conns_) {
    if (c.role == Conn::Role::kWorker) ++n;
  }
  return n;
}

std::size_t Engine::find_conn(int fd) const {
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i].fd == fd) return i;
  }
  return kNone;
}

void Engine::accept_pending() {
  std::string peer;
  const int fd = listener_->accept_one(&peer);
  if (fd < 0) return;
  if (!opts_.allow.empty() && peer != "unix" &&
      std::find(opts_.allow.begin(), opts_.allow.end(), peer) ==
          opts_.allow.end()) {
    ++stats.addr_rejected;
    if (opts_.flight) opts_.flight->record(FlightEvent::kAddrReject);
    if (opts_.on_log) opts_.on_log("peer refused by allowlist: " + peer);
    close(fd);
    return;
  }
  if (opts_.flight) opts_.flight->record(FlightEvent::kConnect);
  Conn c;
  c.fd = fd;
  c.last_seen = Clock::now();
  c.accepted_at = c.last_seen;
  // Until HELLO succeeds this peer is nobody: it gets a few KB per frame,
  // not the 64 MB a worker's RESULT may legitimately claim.
  c.reader.set_max_payload(kMaxHelloPayload);
  conns_.push_back(std::move(c));
}

void Engine::forget_worker(const std::string& id) {
  auto it = workers_.find(id);
  if (it == workers_.end()) return;
  WorkerState& w = it->second;
  // Front of the queue: a lost lease should complete before untouched work
  // so the campaign's tail latency doesn't double on every worker death.
  // Reverse iteration keeps the requeued slots in slot order at the front.
  for (auto ot = w.outstanding.rbegin(); ot != w.outstanding.rend(); ++ot) {
    const int job = ot->first.first;
    const int slot = ot->first.second;
    auto bt = batches_.find(job);
    if (bt == batches_.end()) continue;
    Batch& b = bt->second;
    if (b.filled[static_cast<std::size_t>(slot)] != 0) {
      continue;  // raced: the result arrived before the death verdict
    }
    b.queue.push_front(slot);
    b.enqueued_at[static_cast<std::size_t>(slot)] = Clock::now();
    ++stats.cells_requeued;
    if (opts_.flight) {
      opts_.flight->record(FlightEvent::kRequeue, id, job, slot, ot->second);
    }
  }
  ++stats.workers_lost;
  workers_.erase(it);
}

void Engine::drop_conn(std::size_t i, bool may_reattach) {
  Conn& c = conns_[i];
  const bool was_client = c.role == Conn::Role::kClient;
  const int fd = c.fd;
  if (c.role == Conn::Role::kWorker && !c.worker_id.empty()) {
    auto it = workers_.find(c.worker_id);
    if (it != workers_.end() && it->second.fd == fd) {
      if (may_reattach) {
        // Detach, don't forget: the worker keeps computing and may
        // reconnect within the grace window with its results in hand.
        ++stats.links_dropped;
        if (opts_.flight) {
          opts_.flight->record(FlightEvent::kDetach, c.worker_id);
        }
        it->second.fd = -1;
        it->second.detached_at = Clock::now();
        if (opts_.on_log) {
          opts_.on_log("link lost: " + c.worker_id + " (reconnect grace " +
                       std::to_string(opts_.reconnect_grace_ms) + " ms)");
        }
      } else {
        forget_worker(c.worker_id);
      }
    }
  }
  close(fd);
  conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
  if (was_client && opts_.on_client_closed) opts_.on_client_closed(fd);
}

bool Engine::handle_hello(std::size_t i, const Hello& h) {
  Conn& c = conns_[i];
  const auto bye = [&](const std::string& reason) {
    const std::string out = encode_frame(FrameType::kBye, encode_bye(reason));
    send_all(c.fd, out.data(), out.size());
  };
  if (h.version < kMinProtocolVersion || h.version > kProtocolVersion) {
    ++stats.version_rejected;
    if (opts_.flight) opts_.flight->record(FlightEvent::kVersionReject);
    bye("version mismatch: peer v" + std::to_string(h.version) +
        ", expected v" + std::to_string(kMinProtocolVersion) + "-v" +
        std::to_string(kProtocolVersion));
    return false;
  }
  if (!opts_.token.empty() && !tokens_equal(h.token, opts_.token)) {
    ++stats.auth_rejected;
    if (opts_.flight) opts_.flight->record(FlightEvent::kAuthReject);
    if (opts_.on_log) {
      opts_.on_log("auth failed: " + (h.name.empty() ? "?" : h.name));
    }
    bye("auth failed");
    return false;
  }
  // The connection speaks the lower of the two versions; v3-only frames
  // (STATS) simply never flow on a v2 link.
  c.version = h.version;
  if (h.role == "worker") {
    std::string id = h.id;
    auto it = id.empty() ? workers_.end() : workers_.find(id);
    if (it != workers_.end()) {
      if (it->second.fd >= 0) {
        bye("worker id already connected: " + id);
        return false;
      }
      it->second.fd = c.fd;
      ++it->second.reattaches;
      ++stats.workers_reattached;
      if (opts_.flight) opts_.flight->record(FlightEvent::kReattach, id);
      if (opts_.on_log) opts_.on_log("worker reattached: " + id);
    } else {
      // Fresh worker — or one reconnecting after its grace expired, whose
      // id we no longer know; either way it joins clean and any re-sent
      // results it carries simply dedupe.
      if (id.empty()) {
        do {
          id = "w" + std::to_string(++worker_seq_);
        } while (workers_.count(id) != 0);
      }
      WorkerState w;
      w.name = h.name;
      w.fd = c.fd;
      workers_.emplace(id, std::move(w));
      ++stats.workers_joined;
      if (opts_.flight) opts_.flight->record(FlightEvent::kJoin, id);
      if (opts_.on_log) {
        opts_.on_log("worker joined: " + id +
                     (h.name.empty() ? "" : " (" + h.name + ")"));
      }
    }
    c.role = Conn::Role::kWorker;
    c.name = h.name;
    c.worker_id = id;
  } else if (h.role == "client" && opts_.accept_clients) {
    c.role = Conn::Role::kClient;
    c.name = h.name;
  } else {
    bye("role not accepted here: " + h.role);
    return false;
  }
  // Handshaken: lift the pre-auth frame cap to the real protocol limit.
  c.reader.set_max_payload(kMaxFramePayload);
  Hello reply;
  reply.role = "coordinator";
  reply.id = c.worker_id;
  const std::string out = encode_frame(FrameType::kHello, encode_hello(reply));
  return send_all(c.fd, out.data(), out.size());
}

bool Engine::handle_frame(std::size_t i, const Frame& f) {
  Conn& c = conns_[i];
  if (c.role == Conn::Role::kUnknown) {
    Hello h;
    if (f.type != FrameType::kHello || !decode_hello(f.payload, &h)) {
      return false;  // protocol violation: drop
    }
    return handle_hello(i, h);
  }

  if (c.role == Conn::Role::kClient) {
    if (f.type == FrameType::kBye) return false;
    if (opts_.on_client_frame) opts_.on_client_frame(c.fd, f);
    return true;
  }

  // Worker frames.
  switch (f.type) {
    case FrameType::kLease: {
      int want = 0;
      if (!decode_lease_request(f.payload, &want)) return false;
      c.pending_want = want;
      if (opts_.flight) {
        opts_.flight->record(FlightEvent::kLeaseRequest, c.worker_id);
      }
      return true;
    }
    case FrameType::kResult: {
      int job = 0;
      int slot = -1;
      std::int64_t epoch = 0;
      campaign::RunResult r;
      if (!decode_result(f.payload, &job, &slot, &epoch, &r)) return false;
      if (opts_.flight) {
        opts_.flight->record(FlightEvent::kResult, c.worker_id, job, slot,
                             epoch);
      }
      auto wt = workers_.find(c.worker_id);
      if (wt != workers_.end()) wt->second.outstanding.erase({job, slot});
      auto bt = batches_.find(job);
      if (bt == batches_.end() || slot < 0 ||
          static_cast<std::size_t>(slot) >= bt->second.filled.size() ||
          bt->second.filled[static_cast<std::size_t>(slot)] != 0) {
        ++stats.duplicate_results;  // raced, re-sent, or stale: first won
        return true;
      }
      Batch& b = bt->second;
      if (b.epoch[static_cast<std::size_t>(slot)] != epoch) {
        // A superseded grant's result — still byte-identical (records are
        // pure functions of the cell), so accept it and just count.
        ++stats.stale_results;
      }
      b.filled[static_cast<std::size_t>(slot)] = 1;
      --b.remaining;
      if (opts_.on_worker_result) opts_.on_worker_result(c.worker_id);
      if (b.on_cell) b.on_cell(slot, std::move(r));
      return true;
    }
    case FrameType::kStats: {
      // Cumulative snapshot: replace, never add. A malformed one is
      // ignored like an unknown frame — metrics are a side channel and
      // must never cost a link.
      std::vector<obs::MetricSample> samples;
      if (!decode_stats(f.payload, &samples)) {
        ++stats.unknown_frames;
        return true;
      }
      worker_stats_[c.worker_id] = std::move(samples);
      ++stats_frames_;
      if (opts_.flight) {
        opts_.flight->record(FlightEvent::kStats, c.worker_id);
      }
      return true;
    }
    case FrameType::kHeartbeat:
      return true;  // last_seen already refreshed by the read itself
    case FrameType::kBye:
      if (opts_.flight) opts_.flight->record(FlightEvent::kBye, c.worker_id);
      return false;  // graceful leave: forget, outstanding requeues now
    default:
      // Well-framed but not ours to handle (a newer peer's frame in the
      // reserved window): count and carry on. The link stays up.
      ++stats.unknown_frames;
      return true;
  }
}

void Engine::service_conn(int fd) {
  std::size_t i = find_conn(fd);
  if (i == kNone) return;
  char buf[65536];
  const ssize_t n = recv(fd, buf, sizeof buf, 0);
  if (n < 0) {
    if (errno != EINTR && errno != EAGAIN) drop_conn(i, /*may_reattach=*/true);
    return;
  }
  if (n == 0) {  // EOF: the link is gone (the worker may reconnect)
    drop_conn(i, /*may_reattach=*/true);
    return;
  }
  conns_[i].last_seen = Clock::now();
  conns_[i].reader.feed(buf, static_cast<std::size_t>(n));
  // Frame handlers (and the daemon callbacks they invoke) may drop other
  // connections, shifting indices — re-locate by fd every iteration.
  Frame f;
  for (;;) {
    i = find_conn(fd);
    if (i == kNone) return;  // dropped by a handler side effect
    if (!conns_[i].reader.next(&f)) {
      if (conns_[i].reader.corrupt()) drop_conn(i, /*may_reattach=*/true);
      return;
    }
    if (!handle_frame(i, f)) {
      i = find_conn(fd);
      // A BYE (or any in-protocol rejection) is deliberate: forget the
      // worker now so its leases requeue immediately instead of riding
      // out the reconnect grace.
      if (i != kNone) drop_conn(i, /*may_reattach=*/false);
      return;
    }
  }
}

void Engine::reap_dead() {
  for (std::size_t i = conns_.size(); i-- > 0;) {
    Conn& c = conns_[i];
    if (c.role == Conn::Role::kUnknown) {
      // The deadline anchors at accept, not last_seen: a hostile peer
      // trickling one byte a second must not hold an fd (and a frame
      // buffer) forever. Authenticated clients are exempt — they idle
      // legitimately while their jobs run.
      if (opts_.handshake_timeout_ms > 0 &&
          ms_since(c.accepted_at) > opts_.handshake_timeout_ms) {
        ++stats.handshake_timeouts;
        if (opts_.flight) {
          opts_.flight->record(FlightEvent::kHandshakeTimeout);
        }
        if (opts_.on_log) {
          opts_.on_log("handshake timeout, dropping pre-auth connection");
        }
        drop_conn(i, /*may_reattach=*/false);
      }
      continue;
    }
    if (c.role != Conn::Role::kWorker) continue;
    if (ms_since(c.last_seen) > opts_.dead_after_ms) {
      if (opts_.flight) {
        opts_.flight->record(FlightEvent::kHeartbeatMiss, c.worker_id);
      }
      if (opts_.on_log) {
        opts_.on_log("worker silent " + std::to_string(opts_.dead_after_ms) +
                     " ms, dropping link: " +
                     (c.worker_id.empty() ? "?" : c.worker_id));
      }
      drop_conn(i, /*may_reattach=*/true);
    }
  }
  std::vector<std::string> expired;
  for (const auto& [id, w] : workers_) {
    if (w.fd < 0 && ms_since(w.detached_at) > opts_.reconnect_grace_ms) {
      expired.push_back(id);
    }
  }
  for (const std::string& id : expired) {
    if (opts_.on_log) {
      opts_.on_log("reconnect grace expired, requeueing leases: " + id);
    }
    forget_worker(id);
  }
}

void Engine::beat_workers() {
  for (std::size_t i = conns_.size(); i-- > 0;) {
    Conn& c = conns_[i];
    if (c.role != Conn::Role::kWorker) continue;
    // Nonblocking: a worker deep in a long batch isn't reading, and its
    // full socket buffer must not stall the whole event loop. A skipped
    // beat is fine — the bytes already in flight keep the worker's idle
    // detector quiet.
    const ssize_t w = send(c.fd, beat_frame_.data(), beat_frame_.size(),
                           MSG_NOSIGNAL | MSG_DONTWAIT);
    if (w < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      drop_conn(i, /*may_reattach=*/true);
    } else if (w > 0 && static_cast<std::size_t>(w) < beat_frame_.size()) {
      // A torn frame would desync the stream; finish it (the tail is a
      // handful of bytes, and the buffer just proved it has some room).
      if (!send_all(c.fd, beat_frame_.data() + w, beat_frame_.size() -
                                                      static_cast<std::size_t>(w))) {
        drop_conn(i, /*may_reattach=*/true);
      }
    }
  }
}

int Engine::lease_holders(int job) const {
  int n = 0;
  for (const auto& [id, w] : workers_) {
    const auto it = w.outstanding.lower_bound({job, kSlotMin});
    if (it != w.outstanding.end() && it->first.first == job) ++n;
  }
  return n;
}

int Engine::pick_job_for(const std::string& worker_id) {
  if (rr_jobs_.empty()) return -1;
  const auto holds = [&](int job) {
    const auto wt = workers_.find(worker_id);
    if (wt == workers_.end()) return false;
    const auto it = wt->second.outstanding.lower_bound({job, kSlotMin});
    return it != wt->second.outstanding.end() && it->first.first == job;
  };
  for (std::size_t k = 0; k < rr_jobs_.size(); ++k) {
    const std::size_t at = (rr_pos_ + k) % rr_jobs_.size();
    const int job = rr_jobs_[at];
    const auto bt = batches_.find(job);
    if (bt == batches_.end() || bt->second.queue.empty()) continue;
    const Batch& b = bt->second;
    // The quota counts distinct workers holding this job's leases; a
    // worker already on the job can always take more of it.
    if (b.max_workers > 0 && !holds(job) &&
        lease_holders(job) >= b.max_workers) {
      continue;
    }
    rr_pos_ = (at + 1) % rr_jobs_.size();
    return job;
  }
  return -1;
}

void Engine::grant_leases() {
  if (batches_.empty()) return;
  obs::Histogram* queue_wait =
      opts_.obs != nullptr
          ? &opts_.obs->histogram("fabric.coord.queue_wait_us")
          : nullptr;
  for (std::size_t i = conns_.size(); i-- > 0;) {
    Conn& c = conns_[i];
    if (c.role != Conn::Role::kWorker || c.pending_want <= 0) continue;
    // One job per grant: a worker's slot bookkeeping is per-grant, and
    // cells of different jobs may reuse campaign-plan indices.
    const int job = pick_job_for(c.worker_id);
    if (job < 0) continue;
    Batch& b = batches_[job];
    const int take = std::min<int>(
        {c.pending_want, opts_.lease_batch, static_cast<int>(b.queue.size())});
    std::vector<int> slots;
    std::vector<std::int64_t> epochs;
    std::vector<campaign::RunCell> cells;
    slots.reserve(static_cast<std::size_t>(take));
    epochs.reserve(static_cast<std::size_t>(take));
    cells.reserve(static_cast<std::size_t>(take));
    const auto now = Clock::now();
    for (int k = 0; k < take; ++k) {
      const int slot = b.queue.front();
      b.queue.pop_front();
      const std::int64_t e = ++epoch_seq_;
      b.epoch[static_cast<std::size_t>(slot)] = e;
      if (queue_wait != nullptr) {
        queue_wait->observe(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                now - b.enqueued_at[static_cast<std::size_t>(slot)])
                .count()));
      }
      slots.push_back(slot);
      epochs.push_back(e);
      cells.push_back((*b.cells)[static_cast<std::size_t>(slot)]);
    }
    const std::string out = encode_frame(
        FrameType::kLease, encode_lease_grant(job, slots, epochs, cells));
    if (!send_all(c.fd, out.data(), out.size())) {
      // Write failed: the link is gone; the would-be lease goes back.
      for (auto it = slots.rbegin(); it != slots.rend(); ++it) {
        b.queue.push_front(*it);
        b.enqueued_at[static_cast<std::size_t>(*it)] = now;
      }
      drop_conn(i, /*may_reattach=*/true);
      continue;
    }
    auto wt = workers_.find(c.worker_id);
    if (wt != workers_.end()) {
      for (std::size_t k = 0; k < slots.size(); ++k) {
        wt->second.outstanding[{job, slots[k]}] = epochs[k];
      }
      ++wt->second.leases;
    }
    c.pending_want = 0;
    ++stats.leases_granted;
    if (opts_.flight && !slots.empty()) {
      opts_.flight->record(FlightEvent::kLeaseGrant, c.worker_id, job,
                           slots.front(), epochs.front());
    }
  }
}

void Engine::step(int timeout_ms) {
  std::vector<struct pollfd> pfds;
  pfds.reserve(conns_.size() + 1);
  pfds.push_back({listener_->fd(), POLLIN, 0});
  for (const Conn& c : conns_) pfds.push_back({c.fd, POLLIN, 0});

  const int pr =
      poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
  if (pr > 0) {
    if ((pfds[0].revents & POLLIN) != 0) accept_pending();
    for (std::size_t k = 1; k < pfds.size(); ++k) {
      if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        service_conn(pfds[k].fd);
      }
    }
  }
  reap_dead();
  grant_leases();
  if (opts_.heartbeat_ms > 0 && ms_since(last_beat_) >= opts_.heartbeat_ms) {
    last_beat_ = Clock::now();
    beat_workers();
  }
  // Completion: collect finished jobs first — an on_done may add batches.
  std::vector<std::pair<int, std::function<void()>>> done;
  for (auto it = batches_.begin(); it != batches_.end();) {
    if (it->second.remaining == 0) {
      done.emplace_back(it->first, std::move(it->second.on_done));
      it = batches_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& [job, cb] : done) {
    rr_jobs_.erase(std::remove(rr_jobs_.begin(), rr_jobs_.end(), job),
                   rr_jobs_.end());
    if (rr_pos_ >= rr_jobs_.size()) rr_pos_ = 0;
    for (auto& [id, w] : workers_) {
      const auto lo = w.outstanding.lower_bound({job, kSlotMin});
      const auto hi = w.outstanding.lower_bound({job + 1, kSlotMin});
      w.outstanding.erase(lo, hi);
    }
    if (cb) cb();
  }
}

void Engine::shutdown(const std::string& reason) {
  const std::string bye = encode_frame(FrameType::kBye, encode_bye(reason));
  for (Conn& c : conns_) {
    send_all(c.fd, bye.data(), bye.size());
    close(c.fd);
  }
  conns_.clear();
  workers_.clear();
  batches_.clear();
  rr_jobs_.clear();
  rr_pos_ = 0;
}

bool Engine::sever_worker_link() {
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i].role != Conn::Role::kWorker) continue;
    if (opts_.on_log) {
      opts_.on_log("chaos: severing link of " + conns_[i].worker_id);
    }
    drop_conn(i, /*may_reattach=*/true);
    return true;
  }
  return false;
}

std::vector<WorkerSnapshot> Engine::worker_snapshots() const {
  std::vector<WorkerSnapshot> out;
  out.reserve(workers_.size());
  for (const auto& [id, w] : workers_) {  // map: already sorted by id
    WorkerSnapshot s;
    s.id = id;
    s.name = w.name;
    s.connected = w.fd >= 0;
    s.outstanding = static_cast<int>(w.outstanding.size());
    s.leases = w.leases;
    s.reattaches = w.reattaches;
    if (s.connected) {
      const std::size_t i = find_conn(w.fd);
      s.last_seen_ms = i == kNone ? 0 : ms_since(conns_[i].last_seen);
    } else {
      s.last_seen_ms = ms_since(w.detached_at);
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<obs::MetricSample> Engine::fleet_samples() const {
  std::map<std::string, obs::MetricSample> merged;
  for (const auto& [id, samples] : worker_stats_) {
    obs::merge_samples(&merged, samples);
  }
  if (opts_.obs != nullptr) {
    obs::merge_samples(&merged, opts_.obs->snapshot());
  }
  std::vector<obs::MetricSample> out;
  out.reserve(merged.size());
  for (auto& [name, sample] : merged) out.push_back(std::move(sample));
  return out;
}

bool Engine::send_to_client(int fd, const std::string& frame_bytes) {
  const std::size_t i = find_conn(fd);
  if (i == kNone || conns_[i].role != Conn::Role::kClient) return false;
  if (send_all(fd, frame_bytes.data(), frame_bytes.size())) return true;
  drop_conn(i, /*may_reattach=*/false);
  return false;
}

std::vector<campaign::RunResult> run_fabric(
    Listener* listener, const std::vector<campaign::RunCell>& cells,
    const FabricOptions& opts, FabricStats* stats) {
  std::vector<campaign::RunResult> results(cells.size());
  Engine::Options eopts;
  eopts.lease_batch = opts.lease_batch;
  eopts.dead_after_ms = opts.dead_after_ms;
  eopts.reconnect_grace_ms = opts.reconnect_grace_ms;
  eopts.heartbeat_ms = opts.heartbeat_ms;
  eopts.token = opts.token;
  eopts.on_log = opts.on_log;
  eopts.flight = opts.flight;
  eopts.obs = opts.obs;
  eopts.on_worker_result = opts.on_result_worker;
  Engine eng(listener, eopts);

  bool done = cells.empty();
  std::vector<char> have(cells.size(), 0);
  std::size_t next_ordered = 0;
  std::size_t results_seen = 0;
  if (!done) {
    eng.set_batch(
        &cells,
        [&](int slot, campaign::RunResult r) {
          const auto s = static_cast<std::size_t>(slot);
          results[s] = std::move(r);
          have[s] = 1;
          ++results_seen;
          if (opts.on_result) opts.on_result(results[s]);
          if (opts.on_result_ordered) {
            while (next_ordered < have.size() && have[next_ordered] != 0) {
              opts.on_result_ordered(results[next_ordered]);
              ++next_ordered;
            }
          }
        },
        [&] { done = true; });
  }

  auto worker_seen = Clock::now();
  std::size_t last_flap = 0;
  bool interrupted = false;
  while (!done) {
    if (opts.should_stop && opts.should_stop()) {
      interrupted = true;
      break;
    }
    eng.step(200);
    if (opts.flap_every > 0 &&
        results_seen - last_flap >= static_cast<std::size_t>(opts.flap_every)) {
      if (eng.sever_worker_link()) last_flap = results_seen;
    }
    if (eng.worker_count() > 0) {
      worker_seen = Clock::now();
    } else if (opts.no_worker_timeout_ms > 0 &&
               ms_since(worker_seen) > opts.no_worker_timeout_ms) {
      if (opts.on_log) {
        opts.on_log("no workers for " +
                    std::to_string(opts.no_worker_timeout_ms) +
                    " ms; abandoning the remaining cells");
      }
      interrupted = true;
      break;
    }
  }
  if (!interrupted && opts.worker_stats_out != nullptr) {
    // Each worker ships one last STATS right after its final batch; those
    // frames may still be in flight when the last result lands. Drain
    // until the fleet goes quiet (two steps with no new STATS), bounded —
    // best-effort freshness for a side channel, so a capped wait is the
    // right trade.
    int quiet = 0;
    std::uint64_t seen = eng.stats_frames();
    for (int i = 0; i < 10 && quiet < 2; ++i) {
      eng.step(20);
      quiet = eng.stats_frames() == seen ? quiet + 1 : 0;
      seen = eng.stats_frames();
    }
  }
  if (opts.worker_stats_out != nullptr) {
    *opts.worker_stats_out = eng.worker_stats();
  }
  eng.shutdown(interrupted ? "coordinator interrupted" : "campaign complete");
  if (stats != nullptr) *stats = eng.stats;
  return results;
}

}  // namespace pfi::fabric
