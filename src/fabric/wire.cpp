#include "fabric/wire.hpp"

#include <cstring>

#include "campaign/sandbox.hpp"
#include "fabric/kv.hpp"

namespace pfi::fabric {

namespace {

bool known_type(std::uint8_t t) {
  // The whole reserved window frames cleanly; handlers ignore (and count)
  // types they do not implement, so a newer peer's frames degrade instead
  // of corrupting the stream. Above the window is garbage.
  return t >= static_cast<std::uint8_t>(FrameType::kHello) &&
         t <= kMaxReservedFrameType;
}

/// Accumulates numeric-parse health across one decoder: any token that
/// over/underflows or carries trailing bytes poisons `ok`, and the decoder
/// rejects the whole frame instead of acting on a misparsed value.
struct Num {
  bool ok = true;

  std::int64_t i64(const std::string& v) {
    bool good = true;
    const std::int64_t r = kv::to_i64(v, &good);
    ok = ok && good;
    return r;
  }

  std::uint64_t u64(const std::string& v) {
    bool good = true;
    const std::uint64_t r = kv::to_u64(v, &good);
    ok = ok && good;
    return r;
  }
};

}  // namespace

std::string encode_frame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(5 + payload.size());
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size()) + 1;
  out.push_back(static_cast<char>((len >> 24) & 0xFF));
  out.push_back(static_cast<char>((len >> 16) & 0xFF));
  out.push_back(static_cast<char>((len >> 8) & 0xFF));
  out.push_back(static_cast<char>(len & 0xFF));
  out.push_back(static_cast<char>(type));
  out.append(payload.data(), payload.size());
  return out;
}

bool FrameReader::next(Frame* out) {
  if (corrupt_) return false;
  // Compact once the consumed prefix dominates the buffer.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  if (buf_.size() - pos_ < 4) return false;
  const auto* b = reinterpret_cast<const unsigned char*>(buf_.data() + pos_);
  const std::uint32_t len = (static_cast<std::uint32_t>(b[0]) << 24) |
                            (static_cast<std::uint32_t>(b[1]) << 16) |
                            (static_cast<std::uint32_t>(b[2]) << 8) |
                            static_cast<std::uint32_t>(b[3]);
  if (len == 0 || len > max_payload_ + 1) {
    corrupt_ = true;
    return false;
  }
  if (buf_.size() - pos_ < 4 + len) return false;
  const std::uint8_t type = static_cast<std::uint8_t>(buf_[pos_ + 4]);
  if (!known_type(type)) {
    corrupt_ = true;
    return false;
  }
  out->type = static_cast<FrameType>(type);
  out->payload.assign(buf_, pos_ + 5, len - 1);
  pos_ += 4 + len;
  return true;
}

// --- handshake -------------------------------------------------------------

std::string encode_hello(const Hello& h) {
  std::string out;
  kv::put_u64(&out, "v", h.version);
  kv::put(&out, "role", h.role);
  kv::put(&out, "name", h.name);
  if (!h.token.empty()) kv::put(&out, "token", h.token);
  if (!h.id.empty()) kv::put(&out, "id", h.id);
  return out;
}

bool decode_hello(std::string_view payload, Hello* out) {
  kv::Scan scan{payload};
  std::string key, value;
  bool has_version = false;
  Num num;
  Hello h;
  while (scan.next(&key, &value)) {
    if (key == "v") {
      h.version = static_cast<std::uint32_t>(num.u64(value));
      has_version = true;
    } else if (key == "role") {
      h.role = value;
    } else if (key == "name") {
      h.name = value;
    } else if (key == "token") {
      h.token = value;
    } else if (key == "id") {
      h.id = value;
    }
  }
  if (!num.ok || !has_version || h.role.empty()) return false;
  *out = h;
  return true;
}

bool tokens_equal(std::string_view a, std::string_view b) {
  // Accumulate every byte difference so the comparison touches all of both
  // strings regardless of where the first mismatch sits. Length differences
  // short-circuit — the secret's length is not treated as secret.
  if (a.size() != b.size()) return false;
  unsigned char diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff = static_cast<unsigned char>(
        diff | (static_cast<unsigned char>(a[i]) ^
                static_cast<unsigned char>(b[i])));
  }
  return diff == 0;
}

// --- leases ----------------------------------------------------------------

std::string encode_lease_request(int want) {
  std::string out;
  kv::put_i64(&out, "want", want);
  return out;
}

bool decode_lease_request(std::string_view payload, int* want) {
  kv::Scan scan{payload};
  std::string key, value;
  while (scan.next(&key, &value)) {
    if (key == "want") {
      Num num;
      *want = static_cast<int>(num.i64(value));
      return num.ok && *want > 0;
    }
  }
  return false;
}

std::string encode_lease_grant(int job, const std::vector<int>& slots,
                               const std::vector<std::int64_t>& epochs,
                               const std::vector<campaign::RunCell>& cells) {
  std::string out;
  kv::put_i64(&out, "job", job);
  kv::put_u64(&out, "n", slots.size());
  for (std::size_t i = 0;
       i < slots.size() && i < epochs.size() && i < cells.size(); ++i) {
    kv::put_i64(&out, "slot", slots[i]);
    kv::put_i64(&out, "epoch", epochs[i]);
    kv::put(&out, "cell", encode_cell(cells[i]));
  }
  return out;
}

bool decode_lease_grant(std::string_view payload, int* job,
                        std::vector<int>* slots,
                        std::vector<std::int64_t>* epochs,
                        std::vector<campaign::RunCell>* cells) {
  slots->clear();
  epochs->clear();
  cells->clear();
  *job = 0;
  kv::Scan scan{payload};
  std::string key, value;
  std::uint64_t n = 0;
  int pending_slot = -1;
  std::int64_t pending_epoch = 0;
  bool have_slot = false, have_epoch = false;
  Num num;
  while (scan.next(&key, &value)) {
    if (key == "job") {
      *job = static_cast<int>(num.i64(value));
    } else if (key == "n") {
      n = num.u64(value);
    } else if (key == "slot") {
      pending_slot = static_cast<int>(num.i64(value));
      have_slot = true;
    } else if (key == "epoch") {
      pending_epoch = num.i64(value);
      have_epoch = true;
    } else if (key == "cell") {
      campaign::RunCell cell;
      if (!have_slot || !have_epoch || !decode_cell(value, &cell)) {
        return false;
      }
      slots->push_back(pending_slot);
      epochs->push_back(pending_epoch);
      cells->push_back(std::move(cell));
      have_slot = have_epoch = false;
    }
  }
  return num.ok && slots->size() == n;
}

// --- cells -----------------------------------------------------------------

std::string encode_cell(const campaign::RunCell& cell) {
  std::string out;
  kv::put_i64(&out, "index", cell.index);
  kv::put(&out, "id", cell.id);
  kv::put(&out, "protocol", cell.protocol);
  kv::put(&out, "oracle", cell.oracle);
  kv::put(&out, "vendor", cell.vendor);
  kv::put(&out, "script_file", cell.script_file);
  // New axes only travel when set — a v3 peer without them never sees the
  // keys, and older decoders skip unknown keys.
  if (!cell.conform_file.empty()) kv::put(&out, "conform", cell.conform_file);
  if (!cell.scenario.empty()) kv::put(&out, "scenario", cell.scenario);
  kv::put_u64(&out, "seed", cell.seed);
  kv::put_i64(&out, "nodes", cell.nodes);
  kv::put_i64(&out, "target", cell.target_node);
  kv::put_i64(&out, "warmup", cell.warmup);
  kv::put_i64(&out, "duration", cell.duration);
  kv::put_i64(&out, "jitter", cell.jitter);
  kv::put(&out, "buggy", cell.buggy ? "1" : "0");
  kv::put_i64(&out, "timeout_ms", cell.timeout_ms);
  kv::put_u64(&out, "max_events", cell.max_sim_events);
  kv::put(&out, "timeline", cell.capture_timeline ? "1" : "0");
  kv::put_u64(&out, "nev", cell.schedule.events.size());
  for (const campaign::FaultEvent& e : cell.schedule.events) {
    std::string ev;
    kv::put(&ev, "type", e.type);
    kv::put(&ev, "kind", core::scriptgen::to_string(e.kind));
    kv::put_i64(&ev, "occ", e.occurrence);
    kv::put(&ev, "send", e.on_send ? "1" : "0");
    kv::put_i64(&ev, "delay", e.delay);
    kv::put_i64(&ev, "copies", e.copies);
    kv::put_u64(&ev, "corrupt_off", e.corrupt_offset);
    kv::put_i64(&ev, "batch", e.batch);
    kv::put(&out, "ev", ev);
  }
  return out;
}

namespace {

bool parse_kind(const std::string& s, core::scriptgen::FaultKind* out) {
  using core::scriptgen::FaultKind;
  for (FaultKind k : {FaultKind::kDrop, FaultKind::kDelay,
                      FaultKind::kDuplicate, FaultKind::kCorrupt,
                      FaultKind::kReorder}) {
    if (core::scriptgen::to_string(k) == s) {
      *out = k;
      return true;
    }
  }
  return false;
}

bool decode_event(std::string_view payload, campaign::FaultEvent* out) {
  kv::Scan scan{payload};
  std::string key, value;
  campaign::FaultEvent e;
  Num num;
  while (scan.next(&key, &value)) {
    if (key == "type") {
      e.type = value;
    } else if (key == "kind") {
      if (!parse_kind(value, &e.kind)) return false;
    } else if (key == "occ") {
      e.occurrence = static_cast<int>(num.i64(value));
    } else if (key == "send") {
      e.on_send = value == "1";
    } else if (key == "delay") {
      e.delay = num.i64(value);
    } else if (key == "copies") {
      e.copies = static_cast<int>(num.i64(value));
    } else if (key == "corrupt_off") {
      e.corrupt_offset = static_cast<std::size_t>(num.u64(value));
    } else if (key == "batch") {
      e.batch = static_cast<int>(num.i64(value));
    }
  }
  if (!num.ok) return false;
  *out = std::move(e);
  return true;
}

}  // namespace

bool decode_cell(std::string_view payload, campaign::RunCell* out) {
  kv::Scan scan{payload};
  std::string key, value;
  campaign::RunCell cell;
  std::uint64_t nev = 0;
  Num num;
  while (scan.next(&key, &value)) {
    if (key == "index") {
      cell.index = static_cast<int>(num.i64(value));
    } else if (key == "id") {
      cell.id = value;
    } else if (key == "protocol") {
      cell.protocol = value;
    } else if (key == "oracle") {
      cell.oracle = value;
    } else if (key == "vendor") {
      cell.vendor = value;
    } else if (key == "script_file") {
      cell.script_file = value;
    } else if (key == "conform") {
      cell.conform_file = value;
    } else if (key == "scenario") {
      cell.scenario = value;
    } else if (key == "seed") {
      cell.seed = num.u64(value);
    } else if (key == "nodes") {
      cell.nodes = static_cast<int>(num.i64(value));
    } else if (key == "target") {
      cell.target_node = static_cast<int>(num.i64(value));
    } else if (key == "warmup") {
      cell.warmup = num.i64(value);
    } else if (key == "duration") {
      cell.duration = num.i64(value);
    } else if (key == "jitter") {
      cell.jitter = num.i64(value);
    } else if (key == "buggy") {
      cell.buggy = value == "1";
    } else if (key == "timeout_ms") {
      cell.timeout_ms = static_cast<int>(num.i64(value));
    } else if (key == "max_events") {
      cell.max_sim_events = num.u64(value);
    } else if (key == "timeline") {
      cell.capture_timeline = value == "1";
    } else if (key == "nev") {
      nev = num.u64(value);
    } else if (key == "ev") {
      campaign::FaultEvent e;
      if (!decode_event(value, &e)) return false;
      cell.schedule.events.push_back(std::move(e));
    }
  }
  if (!num.ok || cell.schedule.events.size() != nev) return false;
  if (cell.id.empty() || cell.protocol.empty()) return false;
  *out = std::move(cell);
  return true;
}

// --- results ---------------------------------------------------------------

std::string encode_result(int job, int slot, std::int64_t epoch,
                          const campaign::RunResult& r) {
  std::string out;
  kv::put_i64(&out, "job", job);
  kv::put_i64(&out, "slot", slot);
  kv::put_i64(&out, "epoch", epoch);
  kv::put(&out, "res", campaign::wire_encode(r));
  return out;
}

bool decode_result(std::string_view payload, int* job, int* slot,
                   std::int64_t* epoch, campaign::RunResult* out) {
  kv::Scan scan{payload};
  std::string key, value;
  bool have_slot = false, have_res = false;
  *job = 0;
  *epoch = 0;
  Num num;
  while (scan.next(&key, &value)) {
    if (key == "job") {
      *job = static_cast<int>(num.i64(value));
    } else if (key == "slot") {
      *slot = static_cast<int>(num.i64(value));
      have_slot = true;
    } else if (key == "epoch") {
      *epoch = num.i64(value);
    } else if (key == "res") {
      if (!campaign::wire_decode(value, out)) return false;
      have_res = true;
    }
  }
  return num.ok && have_slot && have_res;
}

// --- stats (v3) ------------------------------------------------------------

std::string encode_stats(const std::vector<obs::MetricSample>& samples) {
  std::string out;
  kv::put_u64(&out, "n", samples.size());
  for (const obs::MetricSample& m : samples) {
    std::string entry;
    kv::put(&entry, "name", m.name);
    const char kind[2] = {m.kind, '\0'};
    kv::put(&entry, "k", kind);
    kv::put_u64(&entry, "v", m.value);
    kv::put(&out, "s", entry);
  }
  return out;
}

bool decode_stats(std::string_view payload,
                  std::vector<obs::MetricSample>* out) {
  out->clear();
  kv::Scan scan{payload};
  std::string key, value;
  std::uint64_t n = 0;
  bool have_n = false;
  Num num;
  while (scan.next(&key, &value)) {
    if (key == "n") {
      n = num.u64(value);
      have_n = true;
      if (n > kMaxStatsSamples) return false;
    } else if (key == "s") {
      if (out->size() >= kMaxStatsSamples) return false;
      kv::Scan inner{value};
      std::string ik, iv;
      obs::MetricSample m;
      bool have_name = false, have_kind = false, have_value = false;
      while (inner.next(&ik, &iv)) {
        if (ik == "name") {
          m.name = iv;
          have_name = true;
        } else if (ik == "k") {
          if (iv.size() != 1) return false;
          m.kind = iv[0];
          have_kind = true;
        } else if (ik == "v") {
          m.value = num.u64(iv);
          have_value = true;
        }
      }
      if (!have_name || !have_kind || !have_value || m.name.empty()) {
        return false;
      }
      out->push_back(std::move(m));
    }
  }
  // have_n distinguishes a genuinely empty snapshot from a payload the
  // scanner silently produced nothing for (garbage bytes).
  return num.ok && have_n && out->size() == n;
}

// --- bye -------------------------------------------------------------------

std::string encode_bye(std::string_view reason) {
  std::string out;
  kv::put(&out, "reason", reason);
  return out;
}

std::string decode_bye(std::string_view payload) {
  kv::Scan scan{payload};
  std::string key, value;
  while (scan.next(&key, &value)) {
    if (key == "reason") return value;
  }
  return "";
}

// --- daemon ----------------------------------------------------------------

std::string encode_submit(const Submit& s) {
  std::string out;
  kv::put(&out, "spec", s.spec_text);
  kv::put(&out, "filter", s.filter);
  kv::put_i64(&out, "timeout_ms", s.timeout_ms);
  kv::put_i64(&out, "max_events", s.max_events);
  kv::put_i64(&out, "retries", s.retries);
  kv::put_i64(&out, "explore", s.explore);
  if (s.max_workers > 0) kv::put_i64(&out, "max_workers", s.max_workers);
  for (const std::string& k : s.have) kv::put(&out, "have", k);
  return out;
}

bool decode_submit(std::string_view payload, Submit* out) {
  kv::Scan scan{payload};
  std::string key, value;
  Submit s;
  bool have_spec = false;
  Num num;
  while (scan.next(&key, &value)) {
    if (key == "spec") {
      s.spec_text = value;
      have_spec = true;
    } else if (key == "filter") {
      s.filter = value;
    } else if (key == "timeout_ms") {
      s.timeout_ms = static_cast<int>(num.i64(value));
    } else if (key == "max_events") {
      s.max_events = num.i64(value);
    } else if (key == "retries") {
      s.retries = static_cast<int>(num.i64(value));
    } else if (key == "explore") {
      s.explore = static_cast<int>(num.i64(value));
    } else if (key == "max_workers") {
      s.max_workers = static_cast<int>(num.i64(value));
    } else if (key == "have") {
      s.have.push_back(value);
    }
  }
  if (!num.ok || !have_spec) return false;
  *out = std::move(s);
  return true;
}

std::string encode_json_line(FrameType type, std::string_view json) {
  std::string out;
  kv::put(&out, "json", json);
  return encode_frame(type, out);
}

std::string decode_json_line(std::string_view payload) {
  kv::Scan scan{payload};
  std::string key, value;
  while (scan.next(&key, &value)) {
    if (key == "json") return value;
  }
  return "";
}

std::string encode_artifact(std::string_view name, std::string_view bytes,
                            std::string_view chunk) {
  std::string out;
  kv::put(&out, "name", name);
  if (!chunk.empty()) kv::put(&out, "chunk", chunk);
  kv::put(&out, "bytes", bytes);
  return out;
}

bool decode_artifact(std::string_view payload, std::string* name,
                     std::string* bytes, std::string* chunk) {
  kv::Scan scan{payload};
  std::string key, value;
  bool have_name = false, have_bytes = false;
  if (chunk != nullptr) chunk->clear();
  while (scan.next(&key, &value)) {
    if (key == "name") {
      *name = value;
      have_name = true;
    } else if (key == "bytes") {
      *bytes = value;
      have_bytes = true;
    } else if (key == "chunk") {
      if (chunk != nullptr) *chunk = value;
    }
  }
  return have_name && have_bytes;
}

}  // namespace pfi::fabric
