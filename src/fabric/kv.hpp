// Length-prefixed key/value entries — the fabric's payload idiom.
//
// Every frame payload is a flat sequence of `key len\nbytes\n` entries, the
// same self-delimiting format the fork sandbox streams RunResults through
// (campaign/sandbox.hpp): trivially lossless (values may contain any byte,
// including newlines), trivially skippable (unknown keys are forward
// compatibility, not errors), and with doubles travelling as C99 hex floats
// there is no precision policy to keep in sync across machines.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

namespace pfi::fabric::kv {

inline void put(std::string* out, const char* key, std::string_view v) {
  *out += key;
  *out += ' ';
  *out += std::to_string(v.size());
  *out += '\n';
  out->append(v.data(), v.size());
  *out += '\n';
}

inline void put_u64(std::string* out, const char* key, std::uint64_t v) {
  put(out, key, std::to_string(v));
}

inline void put_i64(std::string* out, const char* key, std::int64_t v) {
  put(out, key, std::to_string(v));
}

/// Doubles travel as C99 hex floats: exact round-trip, no locale.
inline void put_double(std::string* out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  put(out, key, buf);
}

/// Cursor over `key len\nbytes\n` entries. Unknown keys are skipped by the
/// caller; a malformed entry ends the scan (next() returns false).
struct Scan {
  std::string_view bytes;
  std::size_t pos = 0;

  bool next(std::string* key, std::string* value) {
    if (pos >= bytes.size()) return false;
    const std::size_t sp = bytes.find(' ', pos);
    if (sp == std::string_view::npos) return false;
    const std::size_t nl = bytes.find('\n', sp + 1);
    if (nl == std::string_view::npos) return false;
    char* end = nullptr;
    // The length token is NUL-free inside a string_view; copy it out.
    const std::string len_tok(bytes.substr(sp + 1, nl - sp - 1));
    // Digits only (strtoull would happily wrap "-1") and no ERANGE
    // saturation: the payload is parsed pre-auth, so a hostile length
    // token must die here, not in the bounds arithmetic below.
    if (len_tok.empty() || len_tok[0] < '0' || len_tok[0] > '9') return false;
    errno = 0;
    const unsigned long long len = std::strtoull(len_tok.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
    // Overflow-proof bounds: the value plus its trailing '\n' must fit in
    // what remains after the header newline. The naive `nl + 1 + len + 1`
    // wraps for a crafted len, passing the check into an OOB read — or
    // sends `pos` backwards so the scan re-parses the same entry forever.
    if (nl + 2 > bytes.size() || len > bytes.size() - (nl + 2)) return false;
    if (bytes[nl + 1 + len] != '\n') return false;
    key->assign(bytes.substr(pos, sp - pos));
    value->assign(bytes.substr(nl + 1, len));
    pos = nl + 1 + len + 1;
    return true;
  }
};

/// Strict numeric parses: the whole string must be one in-range number.
/// A failed parse (empty, trailing bytes, ERANGE over/underflow, a minus
/// sign where only unsigned makes sense) yields 0 and reports through *ok
/// when given — frame decoders reject such entries instead of letting a
/// silently saturated value masquerade as a real count, slot or epoch.
inline std::int64_t to_i64(const std::string& v, bool* ok = nullptr) {
  char* end = nullptr;
  errno = 0;
  const long long r = std::strtoll(v.c_str(), &end, 10);
  const bool good =
      !v.empty() && end != nullptr && *end == '\0' && errno != ERANGE;
  if (ok != nullptr) *ok = good;
  return good ? static_cast<std::int64_t>(r) : 0;
}

inline std::uint64_t to_u64(const std::string& v, bool* ok = nullptr) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long r = std::strtoull(v.c_str(), &end, 10);
  const bool good = !v.empty() && v[0] != '-' && end != nullptr &&
                    *end == '\0' && errno != ERANGE;
  if (ok != nullptr) *ok = good;
  return good ? static_cast<std::uint64_t>(r) : 0;
}

inline double to_double(const std::string& v) {
  return std::strtod(v.c_str(), nullptr);
}

}  // namespace pfi::fabric::kv
