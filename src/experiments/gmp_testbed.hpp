// Multi-node GMP testbed reproducing the paper's Figure 5 deployment: each
// node runs gmd / reliable / PFI / UDP / IP / dev, with the PFI tool spliced
// in "where udp send and receive calls were made". All PFI layers share one
// SyncBus so scripts on different nodes can coordinate.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "gmp/daemon.hpp"
#include "gmp/reliable.hpp"
#include "net/layers.hpp"
#include "net/network.hpp"
#include "pfi/gmp_stub.hpp"
#include "pfi/pfi_layer.hpp"
#include "sim/scheduler.hpp"
#include "trace/trace.hpp"
#include "xk/layer.hpp"

namespace pfi::experiments {

class GmpTestbed {
 public:
  struct Node {
    xk::Stack stack;
    gmp::GmpDaemon* gmd = nullptr;
    gmp::ReliableLayer* rel = nullptr;
    core::PfiLayer* pfi = nullptr;
  };

  /// Build nodes with the given ids (sorted ids make the lowest the eventual
  /// leader, as in the paper's IP-address rule). Daemons are built but not
  /// started; call start(id) or start_all().
  GmpTestbed(const std::vector<net::NodeId>& ids, const gmp::GmpBugs& bugs,
             std::uint64_t seed_base = 1000);

  /// Override a node's config before it starts (e.g. heartbeat timeout, to
  /// force one of the two orderings in the partition experiment).
  gmp::GmpConfig& config(net::NodeId id);

  void start(net::NodeId id);
  void start_all();

  /// Accessors build the node's stack on first touch (so filter scripts can
  /// be installed before the daemon is started), without starting the gmd.
  [[nodiscard]] Node& node(net::NodeId id) {
    build(id);
    return *nodes_.at(id);
  }
  [[nodiscard]] gmp::GmpDaemon& gmd(net::NodeId id) { return *node(id).gmd; }
  [[nodiscard]] core::PfiLayer& pfi(net::NodeId id) { return *node(id).pfi; }
  [[nodiscard]] const std::vector<net::NodeId>& ids() const { return ids_; }

  /// True when every listed daemon is IN_GROUP/ALONE and all daemons that
  /// share a view id agree exactly on its membership.
  [[nodiscard]] bool views_consistent() const;

  /// ids of the members of `id`'s current view.
  [[nodiscard]] std::vector<net::NodeId> view_of(net::NodeId id) {
    return gmd(id).view().members;
  }

  /// True if every node in `group` currently has exactly `group` as its view
  /// membership (order-insensitive).
  [[nodiscard]] bool group_formed(std::vector<net::NodeId> group);

  sim::Scheduler sched;
  trace::TraceLog trace;
  net::Network network;
  std::shared_ptr<core::SyncBus> sync = std::make_shared<core::SyncBus>();

 private:
  std::vector<net::NodeId> ids_;
  std::map<net::NodeId, gmp::GmpConfig> configs_;
  std::map<net::NodeId, std::unique_ptr<Node>> nodes_;
  gmp::GmpBugs bugs_;
  std::uint64_t seed_base_ = 1000;
  bool built_ = false;

  void build(net::NodeId id);
};

}  // namespace pfi::experiments
