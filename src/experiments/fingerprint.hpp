// Implementation fingerprinting — paper aspect (iii): "insight into design
// decisions made by the implementors".
//
// The paper inferred lineage from behavioural signatures alone: "The SunOS,
// AIX, and NeXT Mach implementations were all very similar, and seemed to
// have been based on the same release of BSD unix. Solaris, which is based
// on an implementation of System V, behaved differently ... in most
// experiments." This module runs the standard probe battery against an
// arbitrary TcpProfile (no access to its internals) and classifies it from
// the externally observed evidence, exactly the way the authors did by hand.
#pragma once

#include <string>
#include <vector>

#include "tcp/profile.hpp"

namespace pfi::experiments {

struct Fingerprint {
  std::string vendor;

  // Observed evidence (all measured through the PFI layer, never read from
  // the profile object).
  double rto_floor_s = 0;           // first backoff interval on a LAN
  int retransmit_budget = 0;        // retransmissions before giving up
  bool rst_on_timeout = false;
  double keepalive_idle_s = 0;      // first probe after idle
  bool keepalive_garbage_byte = false;
  bool keepalive_fixed_cadence = false;  // 75 s flat vs exponential
  double persist_cap_s = 0;         // zero-window probe plateau
  double clock_scale = 1.0;         // keepalive_idle / 7200

  // The inference.
  std::string lineage;     // "BSD-derived" or "SVR4-derived" or "unknown"
  std::vector<std::string> evidence;  // human-readable reasons
};

/// Probe one stack and classify it.
Fingerprint fingerprint_vendor(const tcp::TcpProfile& profile);

/// True if two fingerprints look like siblings from the same code base
/// (the paper's "seemed to have been based on the same release" call).
bool same_lineage(const Fingerprint& a, const Fingerprint& b);

}  // namespace pfi::experiments
