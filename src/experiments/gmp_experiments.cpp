#include "experiments/gmp_experiments.hpp"

#include <algorithm>
#include <sstream>

#include "experiments/gmp_testbed.hpp"

namespace pfi::experiments {

namespace {

/// True if `history` contains a view including `node` followed (strictly
/// later) by one excluding it.
bool admitted_then_removed(const std::vector<gmp::View>& history,
                           net::NodeId node) {
  bool seen_with = false;
  for (const auto& v : history) {
    if (v.contains(node)) {
      seen_with = true;
    } else if (seen_with) {
      return true;
    }
  }
  return false;
}

/// Number of with->without transitions for `node` in a view history.
int exclusion_count(const std::vector<gmp::View>& history, net::NodeId node) {
  int count = 0;
  bool with = false;
  for (const auto& v : history) {
    const bool now_with = v.contains(node);
    if (with && !now_with) ++count;
    with = now_with;
  }
  return count;
}

int readmission_count(const std::vector<gmp::View>& history,
                      net::NodeId node) {
  int count = 0;
  bool with = false;
  bool ever_with = false;
  for (const auto& v : history) {
    const bool now_with = v.contains(node);
    if (!with && now_with && ever_with) ++count;
    if (now_with) ever_with = true;
    with = now_with;
  }
  return count;
}

}  // namespace

// ---------------------------------------------------------------------------
// Experiment 1a: heartbeats to self / suspension (Table 5 row 1)
// ---------------------------------------------------------------------------

GmpSelfHeartbeatResult run_gmp_exp1_self_heartbeats(bool buggy,
                                                    bool via_suspend) {
  gmp::GmpBugs bugs;
  bugs.local_death_mishandled = buggy;
  bugs.proclaim_forward_param = buggy;
  GmpTestbed tb{{1, 2, 3, 4}, bugs};
  tb.start(1);
  tb.start(2);
  tb.start(3);

  if (via_suspend) {
    tb.sched.schedule(sim::sec(15),
                      [&tb] { tb.gmd(3).suspend_for(sim::sec(30)); });
  } else {
    // Drop the heartbeats node 3 sends to itself during [15 s, 25 s).
    tb.pfi(3).set_send_script(R"tcl(
set t [msg_type cur_msg]
if {$t == "gmp-heartbeat" && [msg_field remote] == 3} {
  set now [now_ms]
  if {$now >= 15000 && $now < 25000} { xDrop cur_msg }
}
)tcl");
  }

  // Node 4 joins late and can only reach node 3 with its PROCLAIMs, so
  // admission depends on node 3 forwarding them to the leader.
  tb.pfi(4).set_send_script(R"tcl(
set t [msg_type cur_msg]
set r [msg_field remote]
if {$t == "gmp-proclaim" && ($r == 1 || $r == 2)} { xDrop cur_msg }
)tcl");
  tb.sched.schedule(sim::sec(40), [&tb] { tb.start(4); });

  tb.sched.run_until(sim::sec(80));

  GmpSelfHeartbeatResult res;
  res.buggy = buggy;
  const auto& d3 = tb.gmd(3);
  res.self_death_events = d3.stats().self_death_events;
  res.believed_self_dead_at_end = d3.believes_self_dead();
  res.others_excluded_it = !tb.gmd(1).view().contains(3);
  res.stayed_in_stale_group = d3.believes_self_dead() &&
                              d3.view().contains(1) &&
                              !tb.gmd(1).view().contains(3);
  res.rejoined_after_reset =
      readmission_count(tb.gmd(1).view_history(), 3) > 0;
  res.proclaims_lost_to_forward_bug =
      d3.stats().forward_attempts_lost_to_bug;
  res.late_joiner_admitted = tb.gmd(1).view().contains(4);
  res.views_consistent = tb.views_consistent();
  return res;
}

// ---------------------------------------------------------------------------
// Experiment 1b: oscillating outgoing-heartbeat drops (Table 5 row 2)
// ---------------------------------------------------------------------------

GmpHeartbeatOscillationResult run_gmp_exp1_heartbeat_oscillation(
    bool delay_instead_of_drop) {
  GmpTestbed tb{{1, 2, 3}, gmp::GmpBugs::none()};
  tb.start_all();
  const char* action = delay_instead_of_drop ? "xDelay cur_msg 10000"
                                             : "xDrop cur_msg";
  std::ostringstream script;
  script << R"tcl(
set t [msg_type cur_msg]
set r [msg_field remote]
if {$t == "gmp-heartbeat" && $r != 3} {
  set phase [expr {([now_ms] / 15000) % 2}]
  if {$phase == 1} { )tcl"
         << action << R"tcl( }
}
)tcl";
  tb.pfi(3).set_send_script(script.str());
  tb.sched.run_until(sim::sec(95));

  GmpHeartbeatOscillationResult res;
  const auto& history = tb.gmd(1).view_history();
  res.times_kicked_out = exclusion_count(history, 3);
  res.times_readmitted = readmission_count(history, 3);
  res.behaved_as_specified =
      res.times_kicked_out >= 2 && res.times_readmitted >= 2;
  return res;
}

// ---------------------------------------------------------------------------
// Experiment 1c: leader drops MC ACKs from the victim (Table 5 row 3)
// ---------------------------------------------------------------------------

GmpDropAcksResult run_gmp_exp1_drop_mc_acks() {
  GmpTestbed tb{{1, 2, 3}, gmp::GmpBugs::none()};
  tb.start(1);
  tb.start(2);
  tb.pfi(1).set_receive_script(R"tcl(
set t [msg_type cur_msg]
if {$t == "gmp-ack" && [msg_field sender] == 3} {
  msg_log cur_msg dropped-by-experiment
  xDrop cur_msg
}
)tcl");
  tb.sched.schedule(sim::sec(10), [&tb] { tb.start(3); });
  tb.sched.run_until(sim::sec(60));

  GmpDropAcksResult res;
  for (const auto& v : tb.gmd(3).view_history()) {
    if (v.members.size() > 1) res.victim_ever_in_committed_group = true;
  }
  // The leader must never have committed a view containing the victim.
  for (const auto& v : tb.gmd(1).view_history()) {
    if (v.contains(3)) res.victim_ever_in_committed_group = true;
  }
  res.victim_transition_aborts = tb.gmd(3).stats().transition_aborts;
  // The admission attempts repeat forever, so the daemons may be sampled
  // mid-attempt (IN_TRANSITION); what matters is that every *committed* view
  // is {1,2}.
  res.others_formed_group_without_victim =
      tb.gmd(1).view().members == std::vector<net::NodeId>{1, 2} &&
      tb.gmd(2).view().members == std::vector<net::NodeId>{1, 2};
  return res;
}

// ---------------------------------------------------------------------------
// Experiment 1d: victim drops COMMITs (Table 5 row 4)
// ---------------------------------------------------------------------------

GmpDropCommitsResult run_gmp_exp1_drop_commits() {
  GmpTestbed tb{{1, 2, 3}, gmp::GmpBugs::none()};
  tb.start(1);
  tb.start(2);
  tb.pfi(3).set_receive_script(R"tcl(
set t [msg_type cur_msg]
if {$t == "gmp-commit"} {
  msg_log cur_msg dropped-by-experiment
  xDrop cur_msg
}
)tcl");
  tb.sched.schedule(sim::sec(10), [&tb] { tb.start(3); });
  tb.sched.run_until(sim::sec(60));

  GmpDropCommitsResult res;
  for (const auto& v : tb.gmd(3).view_history()) {
    if (v.members.size() > 1) res.victim_ever_established = true;
  }
  res.others_admitted_then_removed =
      admitted_then_removed(tb.gmd(1).view_history(), 3);
  res.victim_transition_aborts = tb.gmd(3).stats().transition_aborts;
  return res;
}

// ---------------------------------------------------------------------------
// Experiment 2a: oscillating partition (Table 6 row 1)
// ---------------------------------------------------------------------------

GmpPartitionResult run_gmp_exp2_partition_oscillation() {
  GmpTestbed tb{{1, 2, 3, 4, 5}, gmp::GmpBugs::none()};
  tb.start_all();
  for (net::NodeId id : tb.ids()) {
    std::ostringstream script;
    script << "set r [msg_field remote]\n"
           << "set phase [expr {([now_ms] / 30000) % 2}]\n"
           << "set mygrp " << (id <= 3 ? 0 : 1) << "\n"
           << "set rgrp [expr {$r <= 3 ? 0 : 1}]\n"
           << "if {$phase == 1 && $rgrp != $mygrp} { xDrop cur_msg }\n";
    tb.pfi(id).set_send_script(script.str());
  }

  GmpPartitionResult res;
  tb.sched.schedule(sim::sec(55), [&tb, &res] {
    res.split_groups_formed =
        tb.group_formed({1, 2, 3}) && tb.group_formed({4, 5});
  });
  tb.sched.schedule(sim::sec(88), [&tb, &res] {
    res.merged_group_formed = tb.group_formed({1, 2, 3, 4, 5});
  });
  tb.sched.schedule(sim::sec(115), [&tb, &res] {
    res.split_again = tb.group_formed({1, 2, 3}) && tb.group_formed({4, 5});
  });
  tb.sched.run_until(sim::sec(118));
  res.views_consistent = tb.views_consistent();
  return res;
}

// ---------------------------------------------------------------------------
// Experiment 2b: leader / crown-prince separation (Table 6 row 2)
// ---------------------------------------------------------------------------

GmpLeaderCrownPrinceResult run_gmp_exp2_leader_crownprince(
    bool leader_detects_first) {
  GmpTestbed tb{{1, 2, 3, 4, 5}, gmp::GmpBugs::none()};
  // Orchestrate which of the two concurrent detections wins — the paper's
  // "two possible courses of action ... dependent on the ordering of
  // concurrent events".
  tb.config(1).heartbeat_timeout =
      leader_detects_first ? sim::msec(3500) : sim::msec(7000);
  tb.config(2).heartbeat_timeout =
      leader_detects_first ? sim::msec(7000) : sim::msec(3500);
  tb.start_all();

  tb.sched.schedule(sim::sec(15), [&tb] {
    tb.pfi(1).set_send_script(
        "if {[msg_field remote] == 2} { xDrop cur_msg }");
    tb.pfi(2).set_send_script(
        "if {[msg_field remote] == 1} { xDrop cur_msg }");
  });
  tb.sched.run_until(sim::sec(100));

  GmpLeaderCrownPrinceResult res;
  // Which daemon initiated the first membership change after the cut?
  auto first_mc = tb.trace.first([](const trace::Record& r) {
    return r.type == "gmp-mc-initiate" && r.at > sim::sec(15);
  });
  if (first_mc) res.leader_detected_first = first_mc->node == "gmd-1";
  res.crown_prince_singleton =
      tb.gmd(2).view().members == std::vector<net::NodeId>{2};
  res.others_with_original_leader = tb.group_formed({1, 3, 4, 5});
  res.final_leader_view = tb.gmd(1).view().members;
  return res;
}

// ---------------------------------------------------------------------------
// Experiment 3: proclaim forwarding (Table 7)
// ---------------------------------------------------------------------------

GmpProclaimForwardResult run_gmp_exp3_proclaim_forwarding(bool buggy) {
  gmp::GmpBugs bugs;
  bugs.reply_to_forwarder = buggy;
  GmpTestbed tb{{1, 2, 3}, bugs};
  tb.start(1);
  tb.start(2);
  // Node 3's PROCLAIMs to the leader are dropped: only the crown prince
  // hears them and must forward.
  tb.pfi(3).set_send_script(R"tcl(
set t [msg_type cur_msg]
if {$t == "gmp-proclaim" && [msg_field remote] == 1} { xDrop cur_msg }
)tcl");
  tb.sched.schedule(sim::sec(10), [&tb] { tb.start(3); });
  tb.sched.run_until(sim::sec(30));

  GmpProclaimForwardResult res;
  res.buggy = buggy;
  res.joiner_admitted = tb.gmd(1).view().contains(3);
  res.proclaims_forwarded = tb.gmd(2).stats().proclaims_forwarded;
  res.loop_replies = tb.trace
                         .select([](const trace::Record& r) {
                           return r.type == "gmp-proclaim-loop-reply";
                         })
                         .size();
  return res;
}

// ---------------------------------------------------------------------------
// Experiment 4: timer test (Table 8)
// ---------------------------------------------------------------------------

GmpTimerTestResult run_gmp_exp4_timer_test(bool buggy) {
  gmp::GmpBugs bugs;
  bugs.timer_unregister_inverted = buggy;
  GmpTestbed tb{{1, 2, 3}, bugs};
  tb.start(1);
  tb.start(2);
  tb.pfi(2).run_setup("set mc_count 0");
  tb.pfi(2).set_receive_script(R"tcl(
set t [msg_type cur_msg]
if {$t == "gmp-mc"} { incr mc_count }
if {$mc_count >= 2 && ($t == "gmp-commit" || $t == "gmp-heartbeat")} {
  xDrop cur_msg
}
)tcl");
  tb.sched.schedule(sim::sec(15), [&tb] { tb.start(3); });
  tb.sched.run_until(sim::sec(45));

  GmpTimerTestResult res;
  res.buggy = buggy;
  res.transition_hb_timeouts = tb.gmd(2).stats().transition_hb_timeouts;
  res.transition_aborts = tb.gmd(2).stats().transition_aborts;
  return res;
}

// ---------------------------------------------------------------------------
// Probe injection: steering into hard-to-reach states
// ---------------------------------------------------------------------------

GmpProbeInjectionResult run_gmp_probe_injection() {
  GmpTestbed tb{{1, 2, 3}, gmp::GmpBugs::none()};
  tb.start_all();
  tb.sched.schedule(sim::sec(15), [&tb] {
    // Forge a death report "from node 2" about node 3 and inject it upward
    // into the leader's stack — a spontaneous probe message (§2.1).
    tb.pfi(1).receive_interp().eval(
        "xInject up type death sender 2 originator 2 subject 3 remote 2");
  });
  tb.sched.run_until(sim::sec(60));

  GmpProbeInjectionResult res;
  res.healthy_member_evicted =
      admitted_then_removed(tb.gmd(1).view_history(), 3);
  res.member_rejoined = tb.gmd(1).view().contains(3);
  return res;
}

}  // namespace pfi::experiments
