#include "experiments/tcp_experiments.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "experiments/tcp_testbed.hpp"

namespace pfi::experiments {

namespace {

/// Receive-filter drops of data segments, grouped by sequence number in
/// first-seen order: {seq -> arrival timestamps}.
std::vector<std::pair<std::int64_t, std::vector<sim::TimePoint>>>
dropped_data_by_seq(const trace::TraceLog& trace) {
  std::vector<std::pair<std::int64_t, std::vector<sim::TimePoint>>> out;
  for (const auto& r : trace.records()) {
    if (r.node != "xkernel" || r.direction != "recv") continue;
    if (r.type != "tcp-data" && r.type != "tcp-ack") continue;
    auto seq = detail_field(r.detail, "seq");
    if (!seq) continue;
    auto it = std::find_if(out.begin(), out.end(),
                           [&](const auto& p) { return p.first == *seq; });
    if (it == out.end()) {
      out.push_back({*seq, {r.at}});
    } else {
      it->second.push_back(r.at);
    }
  }
  return out;
}

std::vector<double> to_seconds(const std::vector<sim::Duration>& ds) {
  std::vector<double> out;
  out.reserve(ds.size());
  for (sim::Duration d : ds) out.push_back(sim::to_seconds(d));
  return out;
}

bool rst_seen(const trace::TraceLog& trace) {
  return trace
      .first([](const trace::Record& r) {
        return r.node == "xkernel" && r.direction == "recv" &&
               r.type == "tcp-rst";
      })
      .has_value();
}

}  // namespace

// ---------------------------------------------------------------------------
// Experiment 1: retransmission intervals (Table 1)
// ---------------------------------------------------------------------------

TcpExp1Result run_tcp_exp1(const tcp::TcpProfile& vendor,
                           sim::Duration link_latency) {
  TcpTestbed tb{vendor, link_latency};
  tb.pfi->run_setup("set count 0");
  tb.pfi->set_receive_script(R"tcl(
# Let thirty data segments through, then drop (and log) everything inbound.
set t [msg_type cur_msg]
if {$t == "tcp-data"} { incr count }
if {$count > 30} {
  msg_log cur_msg
  xDrop cur_msg
}
)tcl");

  tcp::TcpConnection* conn = tb.connect();
  core::TcpDriver driver{tb.sched, *conn};
  driver.start(sim::msec(500), 512, 0);
  tb.sched.run_until(sim::sec(1500));

  TcpExp1Result res;
  res.vendor = vendor.name;
  const auto groups = dropped_data_by_seq(tb.trace);
  if (!groups.empty()) {
    const auto& [seq, times] = groups.front();  // the first dropped segment
    res.retransmissions = static_cast<int>(times.size()) - 1;
    res.intervals_s = to_seconds(trace::TraceLog::intervals(times));
    if (!res.intervals_s.empty()) {
      res.first_interval_s = res.intervals_s.front();
      res.max_interval_s =
          *std::max_element(res.intervals_s.begin(), res.intervals_s.end());
    }
  }
  res.rst_observed = rst_seen(tb.trace);
  res.close_reason = conn->close_reason();
  return res;
}

// ---------------------------------------------------------------------------
// Experiment 2: RTO with delayed ACKs (Table 2 / Figure 4)
// ---------------------------------------------------------------------------

TcpExp2Result run_tcp_exp2(const tcp::TcpProfile& vendor,
                           sim::Duration ack_delay) {
  TcpTestbed tb{vendor};
  std::ostringstream setup;
  setup << "set data_count 0\nset dropping 0\nset delay_ms "
        << ack_delay / sim::kMillisecond;
  tb.pfi->run_setup(setup.str());
  // Delay every outgoing ACK while the first thirty data segments flow;
  // from the 31st data segment on, the receive filter drops (and logs)
  // everything inbound — so the 31st segment's entire retransmission series
  // is observable. The receive filter flips the send filter's state through
  // the cross-interpreter channel, the paper's own signalling example.
  tb.pfi->set_send_script(R"tcl(
set t [msg_type cur_msg]
if {$t == "tcp-ack" && $dropping == 0} {
  xDelay cur_msg $delay_ms
}
)tcl");
  tb.pfi->set_receive_script(R"tcl(
set t [msg_type cur_msg]
if {$t == "tcp-data"} { incr data_count }
if {$data_count > 30} {
  set dropping 1
  peer_set dropping 1
  msg_log cur_msg
  xDrop cur_msg
}
)tcl");

  tcp::TcpConnection* conn = tb.connect();
  core::TcpDriver driver{tb.sched, *conn};
  // Space segments wider than the ACK delay so each one completes its round
  // trip alone — the paper's measurements are per-segment RTO values, not
  // pipeline artifacts of the retransmit timer being restarted by ACKs for
  // earlier segments.
  const sim::Duration spacing =
      std::max<sim::Duration>(sim::sec(4), ack_delay + sim::sec(2));
  driver.start(spacing, 512, 0);
  tb.sched.run_until(sim::sec(2000));

  TcpExp2Result res;
  res.vendor = vendor.name;
  res.ack_delay_s = sim::to_seconds(ack_delay);
  const auto groups = dropped_data_by_seq(tb.trace);
  // The dropped-and-retransmitted segment is the one with the most logged
  // arrivals (fresh segments that were dropped once never retransmit: they
  // are behind the stalled window).
  const auto* best =
      static_cast<const std::pair<std::int64_t,
                                  std::vector<sim::TimePoint>>*>(nullptr);
  for (const auto& g : groups) {
    if (best == nullptr || g.second.size() > best->second.size()) best = &g;
  }
  if (best != nullptr) {
    res.retransmissions = static_cast<int>(best->second.size()) - 1;
    res.intervals_s = to_seconds(trace::TraceLog::intervals(best->second));
    if (!res.intervals_s.empty()) res.first_rto_s = res.intervals_s.front();
  }
  res.rst_observed = rst_seen(tb.trace);
  res.close_reason = conn->close_reason();
  return res;
}

TcpExp2CounterResult run_tcp_exp2_counter(const tcp::TcpProfile& vendor) {
  TcpTestbed tb{vendor};
  tb.pfi->run_setup("set count 0\nset delay_next_ack 0");
  tb.pfi->set_receive_script(R"tcl(
# Pass thirty segments; the 31st (m1) also passes but its ACK will be held
# 35 seconds; everything after that is dropped.
set t [msg_type cur_msg]
if {$t == "tcp-data"} {
  incr count
  if {$count == 31} { peer_set delay_next_ack 1 }
}
if {$count >= 32} {
  msg_log cur_msg
  xDrop cur_msg
}
)tcl");
  tb.pfi->set_send_script(R"tcl(
set t [msg_type cur_msg]
if {$delay_next_ack == 1 && $t == "tcp-ack"} {
  set delay_next_ack 0
  xDelay cur_msg 35000
}
)tcl");

  tcp::TcpConnection* conn = tb.connect();
  core::TcpDriver driver{tb.sched, *conn};
  driver.start(sim::msec(500), 512, 0);
  tb.sched.run_until(sim::sec(1500));

  TcpExp2CounterResult res;
  res.vendor = vendor.name;
  auto groups = dropped_data_by_seq(tb.trace);
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (!groups.empty()) {
    // m1's initial transmission passed the filter, so every logged drop of
    // m1's seq is a retransmission.
    res.m1_retransmissions = static_cast<int>(groups[0].second.size());
  }
  if (groups.size() > 1) {
    // m2's initial transmission was already dropped: retransmissions are
    // everything after the first drop.
    res.m2_retransmissions = static_cast<int>(groups[1].second.size()) - 1;
  }
  res.close_reason = conn->close_reason();
  res.connection_died = conn->state() == tcp::State::kClosed;
  return res;
}

// ---------------------------------------------------------------------------
// Experiment 3: keep-alive (Table 3)
// ---------------------------------------------------------------------------

TcpExp3Result run_tcp_exp3(const tcp::TcpProfile& vendor, bool drop_probes,
                           sim::Duration observe) {
  TcpTestbed tb{vendor};
  tb.pfi->run_setup(std::string("set dropping 0\nset do_drop ") +
                    (drop_probes ? "1" : "0"));
  tb.pfi->set_receive_script(R"tcl(
msg_log cur_msg
if {$dropping == 1 && $do_drop == 1} { xDrop cur_msg }
)tcl");

  tcp::TcpConnection* conn = tb.connect();
  core::TcpDriver driver{tb.sched, *conn};
  driver.start(sim::msec(100), 128, 3);  // a little traffic, then idle
  tb.sched.schedule(sim::sec(1), [conn] { conn->set_keepalive(true); });
  tb.sched.schedule(sim::sec(2), [&tb] {
    tb.pfi->receive_interp().set_global("dropping", "1");
  });
  tb.sched.run_until(observe);

  TcpExp3Result res;
  res.vendor = vendor.name;
  res.probes_dropped = drop_probes;
  // Idle anchor: the last inbound segment before the quiet period.
  sim::TimePoint idle_anchor = 0;
  std::vector<sim::TimePoint> probe_times;
  for (const auto& r : tb.trace.records()) {
    if (r.node != "xkernel" || r.direction != "recv") continue;
    if (r.at < sim::sec(100)) {
      idle_anchor = r.at;
    } else if (r.type == "tcp-ack" || r.type == "tcp-data") {
      probe_times.push_back(r.at);
    } else if (r.type == "tcp-rst") {
      res.rst_observed = true;
    }
  }
  res.probes_observed = static_cast<int>(probe_times.size());
  if (!probe_times.empty()) {
    res.first_probe_after_s =
        sim::to_seconds(probe_times.front() - idle_anchor);
    res.probe_intervals_s =
        to_seconds(trace::TraceLog::intervals(probe_times));
    res.spec_violation_threshold = res.first_probe_after_s < 7199.0;
  }
  res.close_reason = conn->close_reason();
  return res;
}

// ---------------------------------------------------------------------------
// Experiment 4: zero-window probes (Table 4)
// ---------------------------------------------------------------------------

TcpExp4Result run_tcp_exp4(const tcp::TcpProfile& vendor, bool drop_probes) {
  TcpTestbed tb{vendor};
  tb.pfi->run_setup(std::string("set dropping 0\nset do_drop ") +
                    (drop_probes ? "1" : "0"));
  // The send filter notices our own zero-window advertisement and flips the
  // receive filter into drop mode ("as soon as x-injector advertised a zero
  // window, the receive filter started dropping incoming packets").
  tb.pfi->set_send_script(R"tcl(
if {$do_drop == 1 && [msg_field window] == 0} { peer_set dropping 1 }
)tcl");
  tb.pfi->set_receive_script(R"tcl(
msg_log cur_msg
if {$dropping == 1} { xDrop cur_msg }
)tcl");

  tcp::TcpConnection* conn = tb.connect();
  core::TcpDriver driver{tb.sched, *conn};
  tb.sched.run_until(sim::msec(100));  // let the handshake finish
  if (tb.accepted() != nullptr) {
    tb.accepted()->set_auto_drain(false);  // never reset the receive buffer
  }
  driver.start(sim::msec(100), 512, 20);  // 10 KiB into a 4 KiB window
  tb.sched.run_until(sim::sec(600));

  TcpExp4Result res;
  res.vendor = vendor.name;
  res.probes_dropped = drop_probes;

  std::vector<sim::TimePoint> probe_times;
  for (const auto& r : tb.trace.records()) {
    if (r.node != "xkernel" || r.direction != "recv") continue;
    if (r.type != "tcp-data") continue;
    auto len = detail_field(r.detail, "len");
    if (len && *len == 1) probe_times.push_back(r.at);
  }
  res.probe_intervals_s = to_seconds(trace::TraceLog::intervals(probe_times));
  if (!res.probe_intervals_s.empty()) {
    res.cap_s = *std::max_element(res.probe_intervals_s.begin(),
                                  res.probe_intervals_s.end());
  }

  if (drop_probes) {
    // Unplug the ethernet for two days, replug, and see if probes continue
    // (the paper did exactly this; all four vendors were still probing).
    const std::uint64_t before = conn->stats().persist_probes_sent;
    tb.network.unplug(TcpTestbed::kXkernelNode);
    tb.sched.run_for(sim::hours(48));
    tb.network.plug(TcpTestbed::kXkernelNode);
    tb.sched.run_for(sim::sec(300));
    res.still_probing_after_unplug =
        conn->stats().persist_probes_sent > before &&
        conn->state() == tcp::State::kEstablished;
  }
  res.probes_sent = conn->stats().persist_probes_sent;
  res.close_reason = conn->close_reason();
  return res;
}

// ---------------------------------------------------------------------------
// Experiment 5: reordering (paper §4.1 experiment 5)
// ---------------------------------------------------------------------------

TcpExp5Result run_tcp_exp5(const tcp::TcpProfile& vendor) {
  TcpTestbed tb{vendor};
  tb.pfi->run_setup("set n 0\nset target -1");
  tb.pfi->set_send_script(R"tcl(
# Delay the fifth outgoing data segment three seconds so its successor
# arrives first, and drop every retransmission of it meanwhile.
set t [msg_type cur_msg]
if {$t == "tcp-data"} {
  set s [msg_field seq]
  if {$s == $target} {
    msg_log cur_msg dropped-retransmission
    xDrop cur_msg
  } else {
    incr n
    if {$n == 5} {
      set target $s
      msg_log cur_msg delayed-3000ms
      xDelay cur_msg 3000
    }
  }
}
)tcl");

  tcp::TcpConnection* conn = tb.connect();
  tb.sched.run_until(sim::msec(100));
  TcpExp5Result res;
  res.vendor = vendor.name;
  if (tb.accepted() == nullptr) return res;

  // This experiment reverses the data direction: the x-Kernel machine sends
  // and the vendor machine receives the reordered stream.
  core::TcpDriver driver{tb.sched, *tb.accepted()};
  driver.start(sim::msec(200), 512, 10);
  // Generous horizon: the no-reassembly strawman recovers every dropped
  // out-of-order segment by retransmission under Karn-retained backoff,
  // which is exactly the throughput penalty RFC-1122 warns about.
  tb.sched.run_until(sim::sec(400));

  res.ooo_segments_queued = conn->stats().out_of_order_queued;
  res.ooo_segments_dropped = conn->stats().out_of_order_dropped;
  res.queued_out_of_order = res.ooo_segments_queued > 0;
  res.bytes_delivered = conn->stats().bytes_received;
  res.bytes_sent = tb.accepted()->stats().bytes_sent;
  res.delivered_everything =
      res.bytes_sent > 0 && res.bytes_delivered == res.bytes_sent;
  return res;
}

}  // namespace pfi::experiments
