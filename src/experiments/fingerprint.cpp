#include "experiments/fingerprint.hpp"

#include <cmath>
#include <sstream>

#include "experiments/tcp_experiments.hpp"
#include "experiments/tcp_testbed.hpp"
#include "pfi/driver.hpp"

namespace pfi::experiments {

namespace {

/// Measure the keep-alive probe format by logging probe payload lengths at
/// the x-Kernel receive filter.
struct KeepaliveObservation {
  double idle_s = 0;
  bool garbage_byte = false;
  bool fixed_cadence = false;
};

KeepaliveObservation observe_keepalive(const tcp::TcpProfile& profile) {
  const TcpExp3Result dropped = run_tcp_exp3(profile, true, sim::hours(3));
  KeepaliveObservation out;
  out.idle_s = dropped.first_probe_after_s;
  // Probe cadence: flat intervals (variance ~0) vs exponential growth.
  if (dropped.probe_intervals_s.size() >= 3) {
    const auto& iv = dropped.probe_intervals_s;
    double ratio_sum = 0;
    for (std::size_t i = 1; i < iv.size(); ++i) ratio_sum += iv[i] / iv[i - 1];
    const double mean_ratio =
        ratio_sum / static_cast<double>(iv.size() - 1);
    out.fixed_cadence = mean_ratio < 1.3;  // ~1.0 flat, ~2.0 exponential
  }
  // Garbage byte: rerun without dropping and sniff probe payload lengths.
  TcpTestbed tb{profile};
  tb.pfi->set_receive_script("msg_log cur_msg");
  tcp::TcpConnection* conn = tb.connect();
  core::TcpDriver driver{tb.sched, *conn};
  driver.start(sim::msec(100), 128, 2);
  tb.sched.schedule(sim::sec(1), [conn] { conn->set_keepalive(true); });
  tb.sched.run_until(sim::hours(3));
  for (const auto& r : tb.trace.records()) {
    if (r.direction != "recv" || r.at < sim::sec(3600)) continue;
    if (r.type == "tcp-data" &&
        detail_field(r.detail, "len").value_or(0) == 1) {
      out.garbage_byte = true;
    }
  }
  return out;
}

}  // namespace

Fingerprint fingerprint_vendor(const tcp::TcpProfile& profile) {
  Fingerprint fp;
  fp.vendor = profile.name;

  const TcpExp1Result rtx = run_tcp_exp1(profile);
  fp.retransmit_budget = rtx.retransmissions;
  fp.rst_on_timeout = rtx.rst_observed;
  fp.rto_floor_s = rtx.first_interval_s;

  const KeepaliveObservation ka = observe_keepalive(profile);
  fp.keepalive_idle_s = ka.idle_s;
  fp.keepalive_garbage_byte = ka.garbage_byte;
  fp.keepalive_fixed_cadence = ka.fixed_cadence;
  fp.clock_scale = ka.idle_s / 7200.0;

  const TcpExp4Result zw = run_tcp_exp4(profile, false);
  fp.persist_cap_s = zw.cap_s;

  // --- the inference, scored from evidence --------------------------------
  int bsd = 0;
  int svr4 = 0;
  auto cite = [&fp](const std::string& s) { fp.evidence.push_back(s); };
  if (std::fabs(fp.rto_floor_s - 1.0) < 0.2) {
    ++bsd;
    cite("1 s RTO floor (BSD slow-timer granularity)");
  } else if (fp.rto_floor_s < 0.6) {
    ++svr4;
    cite("sub-second RTO floor (fast-clock SVR4 timer)");
  }
  if (fp.retransmit_budget == 12 && fp.rst_on_timeout) {
    ++bsd;
    cite("12 per-segment retransmissions then RST (BSD TCPT_REXMT table)");
  } else if (!fp.rst_on_timeout) {
    ++svr4;
    cite("silent abort without RST");
  }
  if (fp.keepalive_fixed_cadence) {
    ++bsd;
    cite("flat 75 s keep-alive probe cadence (BSD keepintvl)");
  } else {
    ++svr4;
    cite("exponential keep-alive probe backoff");
  }
  if (std::fabs(fp.clock_scale - 1.0) < 0.01) {
    ++bsd;
    cite("keep-alive threshold exactly 7200 s");
  } else {
    ++svr4;
    std::ostringstream os;
    os << "scaled clock: keep-alive at " << fp.keepalive_idle_s
       << " s and persist cap " << fp.persist_cap_s << " s share the ratio "
       << fp.clock_scale;
    cite(os.str());
  }
  fp.lineage = bsd > svr4 ? "BSD-derived" : (svr4 > bsd ? "SVR4-derived"
                                                        : "unknown");
  return fp;
}

bool same_lineage(const Fingerprint& a, const Fingerprint& b) {
  return a.lineage == b.lineage &&
         a.retransmit_budget == b.retransmit_budget &&
         a.rst_on_timeout == b.rst_on_timeout &&
         std::fabs(a.clock_scale - b.clock_scale) < 0.01;
}

}  // namespace pfi::experiments
