#include "experiments/tpc_testbed.hpp"

namespace pfi::experiments {

TpcTestbed::TpcTestbed(const std::vector<net::NodeId>& ids,
                       std::uint64_t seed_base)
    : network(sched), ids_(ids) {
  network.default_link().latency = sim::msec(1);
  for (net::NodeId id : ids_) {
    auto node = std::make_unique<Node>();
    tpc::TpcConfig cfg;
    cfg.id = id;
    node->tpc = static_cast<tpc::TpcNode*>(
        node->stack.add(std::make_unique<tpc::TpcNode>(sched, cfg, &trace)));
    node->stack.add(std::make_unique<net::UdpLayer>(id));
    node->stack.add(std::make_unique<net::IpLayer>(id));
    node->stack.add(std::make_unique<net::NetDev>(network, id));

    core::PfiConfig pcfg;
    pcfg.node_name = "tpc-" + std::to_string(id);
    pcfg.trace = &trace;
    pcfg.stub = std::make_shared<core::TpcStub>();
    pcfg.rng_seed = seed_base + id;
    node->pfi = static_cast<core::PfiLayer*>(node->stack.insert_below(
        *node->tpc, std::make_unique<core::PfiLayer>(sched, pcfg)));
    nodes_[id] = std::move(node);
  }
}

bool TpcTestbed::atomic(std::uint32_t txid) {
  bool saw_commit = false;
  bool saw_abort = false;
  for (net::NodeId id : ids_) {
    const auto outcome = tpc(id).outcome_of(txid);
    if (!outcome) continue;
    if (*outcome == tpc::Decision::kCommit) saw_commit = true;
    if (*outcome == tpc::Decision::kAbort) saw_abort = true;
  }
  return !(saw_commit && saw_abort);
}

bool TpcTestbed::all_decided(std::uint32_t txid, tpc::Decision d,
                             const std::vector<net::NodeId>& among) {
  for (net::NodeId id : among) {
    const auto outcome = tpc(id).outcome_of(txid);
    if (!outcome || *outcome != d) return false;
  }
  return true;
}

}  // namespace pfi::experiments
