#include "experiments/gmp_testbed.hpp"

#include <algorithm>

namespace pfi::experiments {

GmpTestbed::GmpTestbed(const std::vector<net::NodeId>& ids,
                       const gmp::GmpBugs& bugs, std::uint64_t seed_base)
    : network(sched), ids_(ids), bugs_(bugs), seed_base_(seed_base) {
  network.default_link().latency = sim::msec(1);
  for (net::NodeId id : ids_) {
    gmp::GmpConfig cfg;
    cfg.id = id;
    cfg.peers = ids_;
    cfg.bugs = bugs_;
    configs_[id] = cfg;
  }
}

gmp::GmpConfig& GmpTestbed::config(net::NodeId id) { return configs_.at(id); }

void GmpTestbed::build(net::NodeId id) {
  if (nodes_.contains(id)) return;
  auto node = std::make_unique<Node>();
  node->gmd = static_cast<gmp::GmpDaemon*>(node->stack.add(
      std::make_unique<gmp::GmpDaemon>(sched, configs_.at(id), &trace)));
  node->rel = static_cast<gmp::ReliableLayer*>(
      node->stack.add(std::make_unique<gmp::ReliableLayer>(sched)));
  node->stack.add(std::make_unique<net::UdpLayer>(id));
  node->stack.add(std::make_unique<net::IpLayer>(id));
  node->stack.add(std::make_unique<net::NetDev>(network, id));

  core::PfiConfig cfg;
  cfg.node_name = "gmd-" + std::to_string(id);
  cfg.trace = &trace;
  cfg.stub = std::make_shared<core::GmpStub>();
  cfg.sync = sync;
  cfg.rng_seed = seed_base_ + id;
  node->pfi = static_cast<core::PfiLayer*>(node->stack.insert_below(
      *node->rel, std::make_unique<core::PfiLayer>(sched, cfg)));
  nodes_[id] = std::move(node);
}

void GmpTestbed::start(net::NodeId id) {
  build(id);
  nodes_.at(id)->gmd->start();
}

void GmpTestbed::start_all() {
  for (net::NodeId id : ids_) start(id);
}

bool GmpTestbed::views_consistent() const {
  for (const auto& [ida, a] : nodes_) {
    for (const auto& [idb, b] : nodes_) {
      if (ida >= idb) continue;
      const gmp::View& va = a->gmd->view();
      const gmp::View& vb = b->gmd->view();
      if (va.id == vb.id && va.members != vb.members) return false;
    }
  }
  return true;
}

bool GmpTestbed::group_formed(std::vector<net::NodeId> group) {
  std::sort(group.begin(), group.end());
  for (net::NodeId id : group) {
    auto it = nodes_.find(id);
    if (it == nodes_.end()) return false;
    const gmp::GmpDaemon& d = *it->second->gmd;
    if (d.status() != gmp::GmdStatus::kInGroup &&
        d.status() != gmp::GmdStatus::kAlone) {
      return false;
    }
    if (d.view().members != group) return false;
  }
  return true;
}

}  // namespace pfi::experiments
