#include "experiments/tcp_testbed.hpp"

namespace pfi::experiments {

TcpTestbed::TcpTestbed(const tcp::TcpProfile& vendor_profile,
                       sim::Duration link_latency)
    : network(sched) {
  network.default_link().latency = link_latency;

  // Vendor machine: app-less stack, driven through the connection API.
  vendor_tcp = static_cast<tcp::TcpLayer*>(vendor_stack.add(
      std::make_unique<tcp::TcpLayer>(sched, kVendorNode, vendor_profile,
                                      &trace, "vendor")));
  vendor_stack.add(std::make_unique<net::IpLayer>(kVendorNode));
  vendor_stack.add(std::make_unique<net::NetDev>(network, kVendorNode));

  // x-Kernel machine: reference TCP / PFI / IP / dev.
  xk_tcp = static_cast<tcp::TcpLayer*>(xk_stack.add(
      std::make_unique<tcp::TcpLayer>(sched, kXkernelNode,
                                      tcp::profiles::xkernel_reference(),
                                      &trace, "xkernel")));
  xk_stack.add(std::make_unique<net::IpLayer>(kXkernelNode));
  xk_stack.add(std::make_unique<net::NetDev>(network, kXkernelNode));

  core::PfiConfig cfg;
  cfg.node_name = "xkernel";
  cfg.trace = &trace;
  cfg.stub = std::make_shared<core::TcpStub>();
  pfi = static_cast<core::PfiLayer*>(
      xk_stack.insert_below(*xk_tcp, std::make_unique<core::PfiLayer>(sched, cfg)));

  xk_tcp->listen(kServicePort);
  xk_tcp->on_accept = [this](tcp::TcpConnection& conn) { accepted_ = &conn; };
}

tcp::TcpConnection* TcpTestbed::connect() {
  return vendor_tcp->connect(kXkernelNode, kServicePort);
}

std::optional<std::int64_t> detail_field(const std::string& detail,
                                         const std::string& name) {
  const std::string needle = name + "=";
  std::size_t pos = 0;
  while ((pos = detail.find(needle, pos)) != std::string::npos) {
    // Require a word boundary before the match ("seq=" must not match
    // "relseq=").
    if (pos > 0 && (std::isalnum(static_cast<unsigned char>(detail[pos - 1])) ||
                    detail[pos - 1] == '_')) {
      pos += needle.size();
      continue;
    }
    const std::size_t start = pos + needle.size();
    std::size_t end = start;
    while (end < detail.size() &&
           (std::isdigit(static_cast<unsigned char>(detail[end])) ||
            detail[end] == '-')) {
      ++end;
    }
    if (end == start) return std::nullopt;
    try {
      return std::stoll(detail.substr(start, end - start));
    } catch (...) {
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace pfi::experiments
