// Two-node TCP testbed reproducing the paper's Figure 3 deployment: one
// "vendor machine" running a profile-parameterised TCP, and one "x-Kernel
// machine" running the reference TCP with a PFI layer spliced between its
// TCP and IP layers. Connections are opened from the vendor machine to the
// x-Kernel machine, exactly as in the paper's tests.
#pragma once

#include <memory>
#include <string>

#include "net/layers.hpp"
#include "net/network.hpp"
#include "pfi/driver.hpp"
#include "pfi/pfi_layer.hpp"
#include "pfi/tcp_stub.hpp"
#include "sim/scheduler.hpp"
#include "tcp/tcp_layer.hpp"
#include "trace/trace.hpp"
#include "xk/layer.hpp"

namespace pfi::experiments {

class TcpTestbed {
 public:
  static constexpr net::NodeId kVendorNode = 1;
  static constexpr net::NodeId kXkernelNode = 2;
  static constexpr net::Port kServicePort = 5000;

  explicit TcpTestbed(const tcp::TcpProfile& vendor_profile,
                      sim::Duration link_latency = sim::msec(1));

  /// Open a connection vendor -> x-Kernel. Returns the vendor-side
  /// connection; run() the scheduler to let the handshake complete.
  tcp::TcpConnection* connect();

  /// The x-Kernel-side connection accepted for the vendor (nullptr until
  /// the SYN arrives).
  [[nodiscard]] tcp::TcpConnection* accepted() const { return accepted_; }

  sim::Scheduler sched;
  trace::TraceLog trace;
  net::Network network;

  xk::Stack vendor_stack;
  tcp::TcpLayer* vendor_tcp = nullptr;

  xk::Stack xk_stack;
  tcp::TcpLayer* xk_tcp = nullptr;
  core::PfiLayer* pfi = nullptr;

 private:
  tcp::TcpConnection* accepted_ = nullptr;
};

/// Extract an integer field like "seq=1234" from a trace detail string.
std::optional<std::int64_t> detail_field(const std::string& detail,
                                         const std::string& name);

}  // namespace pfi::experiments
