// Multi-node 2PC testbed: every node runs tpc / PFI / UDP / IP / dev, with
// the PFI layer at the protocol's UDP boundary (same placement as GMP).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "net/layers.hpp"
#include "net/network.hpp"
#include "pfi/pfi_layer.hpp"
#include "pfi/tpc_stub.hpp"
#include "sim/scheduler.hpp"
#include "tpc/tpc.hpp"
#include "trace/trace.hpp"
#include "xk/layer.hpp"

namespace pfi::experiments {

class TpcTestbed {
 public:
  struct Node {
    xk::Stack stack;
    tpc::TpcNode* tpc = nullptr;
    core::PfiLayer* pfi = nullptr;
  };

  explicit TpcTestbed(const std::vector<net::NodeId>& ids,
                      std::uint64_t seed_base = 500);

  [[nodiscard]] Node& node(net::NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] tpc::TpcNode& tpc(net::NodeId id) { return *node(id).tpc; }
  [[nodiscard]] core::PfiLayer& pfi(net::NodeId id) { return *node(id).pfi; }
  [[nodiscard]] const std::vector<net::NodeId>& ids() const { return ids_; }

  /// Atomicity invariant: no two nodes reached opposite outcomes for the
  /// same transaction.
  [[nodiscard]] bool atomic(std::uint32_t txid);

  /// Every listed node reached `d` for `txid`.
  [[nodiscard]] bool all_decided(std::uint32_t txid, tpc::Decision d,
                                 const std::vector<net::NodeId>& among);

  sim::Scheduler sched;
  trace::TraceLog trace;
  net::Network network;

 private:
  std::vector<net::NodeId> ids_;
  std::map<net::NodeId, std::unique_ptr<Node>> nodes_;
};

}  // namespace pfi::experiments
