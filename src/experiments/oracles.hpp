// Pass/fail oracles over the testbeds, for campaign cells.
//
// The experiments library reports rich per-experiment structs; a campaign
// needs the opposite: one machine-checkable verdict per run, with a reason
// string when it fails. Each oracle encodes a property the paper's
// experiments check by reading tables:
//
//   gmp agreement  - no two daemons ever committed different memberships for
//                    the same view id (safety; the generated-campaign bench's
//                    invariant).
//   gmp liveness   - the full group is formed and consistent at the end.
//   gmp quiet      - the run stayed disruption-free: no suspicion was ever
//                    raised and no membership transition aborted. The
//                    strictest oracle; any effective fault trips it, which
//                    makes it the right target for schedule minimisation.
//   tcp spec       - the TcpSpecChecker saw no RFC-793/1122 violation.
//   tcp alive      - the probed connection ended ESTABLISHED or closed
//                    cleanly (no reset, no retransmission give-up).
//   tpc atomic     - no two nodes decided opposite outcomes for any checked
//                    transaction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spec/tcp_spec.hpp"
#include "tcp/connection.hpp"

namespace pfi::experiments {

class GmpTestbed;
class TpcTestbed;

namespace oracles {

struct Verdict {
  bool pass = true;
  std::string reason;  // empty when passing

  static Verdict ok() { return {}; }
  static Verdict failed(std::string why) { return {false, std::move(why)}; }
};

Verdict gmp_agreement(GmpTestbed& tb);
Verdict gmp_liveness(GmpTestbed& tb);
Verdict gmp_quiet(GmpTestbed& tb);

Verdict tcp_spec(const spec::TcpSpecChecker& checker);
Verdict tcp_alive(const tcp::TcpConnection& conn);

Verdict tpc_atomic(TpcTestbed& tb, const std::vector<std::uint32_t>& txids);

}  // namespace oracles
}  // namespace pfi::experiments
