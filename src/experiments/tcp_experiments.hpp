// One function per TCP experiment in paper §4.1. Each runs the full
// scripted scenario on the TcpTestbed and returns a structured result that
// the bench binaries format into the paper's tables and that the
// integration tests assert against.
#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"
#include "tcp/connection.hpp"
#include "tcp/profile.hpp"

namespace pfi::experiments {

/// Experiment 1 (Table 1): retransmission behaviour when the receiver's PFI
/// layer drops everything after 30 data segments.
struct TcpExp1Result {
  std::string vendor;
  int retransmissions = 0;  // of the first dropped segment, seen at receiver
  std::vector<double> intervals_s;  // successive retransmission gaps
  bool rst_observed = false;        // did a reset reach the receiver?
  double max_interval_s = 0;        // the backoff upper bound (64 s for BSD)
  double first_interval_s = 0;      // the backoff starting point
  tcp::CloseReason close_reason = tcp::CloseReason::kNone;
};
TcpExp1Result run_tcp_exp1(const tcp::TcpProfile& vendor,
                           sim::Duration link_latency = sim::msec(1));

/// Experiment 2 (Table 2 / Figure 4): RTO adaptation when the receiver's
/// send filter delays 30 ACKs by `ack_delay`, then the receive filter drops
/// everything. ack_delay 0 degenerates to experiment 1 (the "no delay"
/// series of Figure 4).
struct TcpExp2Result {
  std::string vendor;
  double ack_delay_s = 0;
  double first_rto_s = 0;             // gap between drop #1 and drop #2
  std::vector<double> intervals_s;    // full backoff series (Figure 4)
  int retransmissions = 0;
  tcp::CloseReason close_reason = tcp::CloseReason::kNone;
  bool rst_observed = false;
};
TcpExp2Result run_tcp_exp2(const tcp::TcpProfile& vendor,
                           sim::Duration ack_delay);

/// Experiment 2 follow-up: the 35-second-delayed-ACK probe that exposed
/// Solaris's global error counter (m1 retransmitted 6 times, then m2 only 3
/// times before the connection died: 6 + 3 = 9).
struct TcpExp2CounterResult {
  std::string vendor;
  int m1_retransmissions = 0;
  int m2_retransmissions = 0;
  tcp::CloseReason close_reason = tcp::CloseReason::kNone;
  bool connection_died = false;
};
TcpExp2CounterResult run_tcp_exp2_counter(const tcp::TcpProfile& vendor);

/// Experiment 3 (Table 3): keep-alive probing. With `drop_probes` the
/// receiver's PFI drops every probe (connection should eventually be
/// declared dead); without, probes are ACKed and the inter-probe interval is
/// measured over `observe` of idle time.
struct TcpExp3Result {
  std::string vendor;
  bool probes_dropped = false;
  double first_probe_after_s = 0;     // idle threshold (7200 vs 6752)
  int probes_observed = 0;
  std::vector<double> probe_intervals_s;
  bool rst_observed = false;
  tcp::CloseReason close_reason = tcp::CloseReason::kNone;
  bool spec_violation_threshold = false;  // first probe before 7200 s
};
TcpExp3Result run_tcp_exp3(const tcp::TcpProfile& vendor, bool drop_probes,
                           sim::Duration observe = sim::hours(30));

/// Experiment 4 (Table 4): zero-window probing. Variant A ACKs probes and
/// measures the backoff cap; variant B (`drop_probes`) drops everything once
/// the window closes, unplugs the ethernet for two days, replugs, and checks
/// the sender is still probing.
struct TcpExp4Result {
  std::string vendor;
  bool probes_dropped = false;
  std::vector<double> probe_intervals_s;
  double cap_s = 0;                  // steady-state probe interval
  bool still_probing_after_unplug = false;
  std::uint64_t probes_sent = 0;
  tcp::CloseReason close_reason = tcp::CloseReason::kNone;
};
TcpExp4Result run_tcp_exp4(const tcp::TcpProfile& vendor, bool drop_probes);

/// Experiment 5: out-of-order delivery. The x-Kernel machine sends data to
/// the vendor; its PFI send filter delays one segment 3 s (so its successor
/// arrives first) and drops retransmissions of it. All four vendors queue
/// the early segment and ACK both once the gap fills.
struct TcpExp5Result {
  std::string vendor;
  bool queued_out_of_order = false;
  std::uint64_t ooo_segments_queued = 0;
  std::uint64_t ooo_segments_dropped = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t bytes_sent = 0;
  bool delivered_everything = false;
};
TcpExp5Result run_tcp_exp5(const tcp::TcpProfile& vendor);

}  // namespace pfi::experiments
