#include "experiments/oracles.hpp"

#include <sstream>

#include "experiments/gmp_testbed.hpp"
#include "experiments/tpc_testbed.hpp"

namespace pfi::experiments::oracles {

namespace {

std::string members_str(const std::vector<net::NodeId>& ms) {
  std::string out = "{";
  for (net::NodeId m : ms) {
    if (out.size() > 1) out += ",";
    out += std::to_string(m);
  }
  return out + "}";
}

}  // namespace

Verdict gmp_agreement(GmpTestbed& tb) {
  for (net::NodeId a : tb.ids()) {
    for (net::NodeId b : tb.ids()) {
      if (a >= b) continue;
      for (const auto& va : tb.gmd(a).view_history()) {
        for (const auto& vb : tb.gmd(b).view_history()) {
          if (va.id == vb.id && va.members != vb.members) {
            std::ostringstream os;
            os << "view " << va.id << " committed as " << members_str(va.members)
               << " on node " << a << " but " << members_str(vb.members)
               << " on node " << b;
            return Verdict::failed(os.str());
          }
        }
      }
    }
  }
  return Verdict::ok();
}

Verdict gmp_liveness(GmpTestbed& tb) {
  if (Verdict v = gmp_agreement(tb); !v.pass) return v;
  if (!tb.group_formed(tb.ids())) {
    std::string views;
    for (net::NodeId id : tb.ids()) {
      if (!views.empty()) views += " ";
      views += std::to_string(id) + ":" + members_str(tb.view_of(id));
    }
    return Verdict::failed("full group not formed at end: " + views);
  }
  return Verdict::ok();
}

Verdict gmp_quiet(GmpTestbed& tb) {
  if (Verdict v = gmp_agreement(tb); !v.pass) return v;
  for (net::NodeId id : tb.ids()) {
    const auto& st = tb.gmd(id).stats();
    if (st.suspects_raised > 0) {
      return Verdict::failed("node " + std::to_string(id) + " raised " +
                             std::to_string(st.suspects_raised) +
                             " suspicion(s)");
    }
    if (st.transition_aborts > 0) {
      return Verdict::failed("node " + std::to_string(id) + " aborted " +
                             std::to_string(st.transition_aborts) +
                             " transition(s)");
    }
  }
  return Verdict::ok();
}

Verdict tcp_spec(const spec::TcpSpecChecker& checker) {
  if (checker.clean()) return Verdict::ok();
  const auto& v = checker.violations().front();
  return Verdict::failed(
      v.rule + ": " + v.detail + " (+" +
      std::to_string(checker.violations().size() - 1) + " more)");
}

Verdict tcp_alive(const tcp::TcpConnection& conn) {
  switch (conn.close_reason()) {
    case tcp::CloseReason::kNone:
    case tcp::CloseReason::kNormal:
      return Verdict::ok();
    default:
      return Verdict::failed("connection died: " +
                             tcp::to_string(conn.close_reason()));
  }
}

Verdict tpc_atomic(TpcTestbed& tb, const std::vector<std::uint32_t>& txids) {
  for (std::uint32_t tx : txids) {
    if (!tb.atomic(tx)) {
      return Verdict::failed("atomicity breach: tx " + std::to_string(tx) +
                             " decided both ways");
    }
  }
  return Verdict::ok();
}

}  // namespace pfi::experiments::oracles
