// One function per GMP experiment in paper §4.2 (Tables 5-8), each runnable
// with the daemon's bugs enabled (the paper's findings reproduce) or fixed
// ("behaved as specified").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gmp/daemon.hpp"

namespace pfi::experiments {

/// Experiment 1a (Table 5 row 1): drop all heartbeats a gmd sends to ITSELF
/// (or, equivalently, suspend it past its timers). Buggy daemon announces
/// its own death but stays in the old group marked dead; fixed daemon forms
/// a singleton and rejoins.
struct GmpSelfHeartbeatResult {
  bool buggy = false;
  std::uint64_t self_death_events = 0;
  bool believed_self_dead_at_end = false;
  bool stayed_in_stale_group = false;  // the bug's signature
  bool others_excluded_it = false;
  bool rejoined_after_reset = false;   // the fixed daemon's behaviour
  std::uint64_t proclaims_lost_to_forward_bug = 0;
  bool late_joiner_admitted = false;   // node relying on proclaim forwarding
  bool views_consistent = false;
};
GmpSelfHeartbeatResult run_gmp_exp1_self_heartbeats(bool buggy,
                                                    bool via_suspend = false);

/// Experiment 1b (Table 5 row 2): a gmd oscillates between sending and
/// dropping its OUTGOING heartbeats to others — it should be kicked out,
/// rejoin, and be kicked out again.
struct GmpHeartbeatOscillationResult {
  int times_kicked_out = 0;
  int times_readmitted = 0;
  bool behaved_as_specified = false;
};
GmpHeartbeatOscillationResult run_gmp_exp1_heartbeat_oscillation(
    bool delay_instead_of_drop);

/// Experiment 1c (Table 5 row 3): the leader's receive filter drops MC ACKs
/// from one machine — it must never be admitted to a group.
struct GmpDropAcksResult {
  bool victim_ever_in_committed_group = false;
  std::uint64_t victim_transition_aborts = 0;
  bool others_formed_group_without_victim = false;
};
GmpDropAcksResult run_gmp_exp1_drop_mc_acks();

/// Experiment 1d (Table 5 row 4): the victim's receive filter drops COMMITs
/// — it stays IN_TRANSITION, gets committed into others' views, then kicked
/// out for not heartbeating.
struct GmpDropCommitsResult {
  bool victim_ever_established = false;     // reached IN_GROUP with others
  bool others_admitted_then_removed = false;
  std::uint64_t victim_transition_aborts = 0;
};
GmpDropCommitsResult run_gmp_exp1_drop_commits();

/// Experiment 2a (Table 6 row 1): five nodes oscillate between a full group
/// and a {1,2,3} | {4,5} partition driven by send-filter scripts.
struct GmpPartitionResult {
  bool split_groups_formed = false;   // during the partition phase
  bool merged_group_formed = false;   // after heal
  bool split_again = false;           // second partition phase
  bool views_consistent = false;
};
GmpPartitionResult run_gmp_exp2_partition_oscillation();

/// Experiment 2b (Table 6 row 2): leader and crown prince stop talking to
/// each other. Two event orderings exist; `leader_detects_first` selects
/// which (the deterministic orchestration the paper calls out). Both must
/// reach the same end state: crown prince alone, everyone else with the
/// original leader.
struct GmpLeaderCrownPrinceResult {
  bool leader_detected_first = false;     // which path actually ran
  bool crown_prince_singleton = false;
  bool others_with_original_leader = false;
  std::vector<net::NodeId> final_leader_view;
};
GmpLeaderCrownPrinceResult run_gmp_exp2_leader_crownprince(
    bool leader_detects_first);

/// Experiment 3 (Table 7): a joiner's PROCLAIMs reach only a non-leader,
/// which forwards them. Buggy leader answers the forwarder -> proclaim loop
/// and the joiner is never admitted; fixed leader answers the originator.
struct GmpProclaimForwardResult {
  bool buggy = false;
  bool joiner_admitted = false;
  std::uint64_t loop_replies = 0;         // leader's replies to the forwarder
  std::uint64_t proclaims_forwarded = 0;
};
GmpProclaimForwardResult run_gmp_exp3_proclaim_forwarding(bool buggy);

/// Experiment 4 (Table 8): after its second MEMBERSHIP_CHANGE a node's
/// receive filter drops COMMITs and heartbeats. With the inverted
/// unregister bug a heartbeat-expect timer fires during IN_TRANSITION; fixed,
/// only the membership-change timer may fire.
struct GmpTimerTestResult {
  bool buggy = false;
  std::uint64_t transition_hb_timeouts = 0;  // the bug's symptom
  std::uint64_t transition_aborts = 0;       // the legitimate MC timer path
};
GmpTimerTestResult run_gmp_exp4_timer_test(bool buggy);

/// Probe-injection demo (paper abstract: spontaneous messages steer the
/// computation into hard-to-reach states): inject a forged DEATH_REPORT into
/// the leader so a perfectly healthy member is evicted, then watch it
/// rejoin.
struct GmpProbeInjectionResult {
  bool healthy_member_evicted = false;
  bool member_rejoined = false;
};
GmpProbeInjectionResult run_gmp_probe_injection();

}  // namespace pfi::experiments
