#include "pfi/tpc_stub.hpp"

#include <sstream>

#include "net/layers.hpp"
#include "tpc/tpc.hpp"

namespace pfi::core {

namespace {

constexpr std::size_t kTpcAt = net::UdpMeta::kSize;

std::optional<std::int64_t> parse_int(const std::string& s) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(s, &pos, 0);
    if (pos != s.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

void poke(xk::Message& msg, std::size_t at, int width, std::int64_t value) {
  for (int i = 0; i < width; ++i) {
    msg.set_byte(at + static_cast<std::size_t>(i),
                 static_cast<std::uint8_t>(value >> (8 * (width - 1 - i))));
  }
}

}  // namespace

std::string TpcStub::type_of(const xk::Message& msg) const {
  tpc::TpcMessage m;
  if (!tpc::TpcMessage::peek(msg, kTpcAt, m)) return "unknown";
  switch (m.type) {
    case tpc::MsgType::kVoteReq: return "tpc-vote-req";
    case tpc::MsgType::kVoteYes: return "tpc-vote-yes";
    case tpc::MsgType::kVoteNo: return "tpc-vote-no";
    case tpc::MsgType::kDecision: return "tpc-decision";
    case tpc::MsgType::kAck: return "tpc-ack";
    case tpc::MsgType::kDecisionReq: return "tpc-decision-req";
  }
  return "unknown";
}

std::string TpcStub::summary(const xk::Message& msg) const {
  tpc::TpcMessage m;
  if (!tpc::TpcMessage::peek(msg, kTpcAt, m)) return "runt tpc message";
  const net::UdpMeta meta = net::UdpMeta::peek(msg);
  std::ostringstream os;
  os << m.summary() << " remote=" << meta.remote;
  return os.str();
}

std::optional<std::int64_t> TpcStub::field(const xk::Message& msg,
                                           const std::string& name) const {
  const net::UdpMeta meta = net::UdpMeta::peek(msg);
  if (name == "remote") return meta.remote;
  tpc::TpcMessage m;
  if (!tpc::TpcMessage::peek(msg, kTpcAt, m)) return std::nullopt;
  if (name == "type") return static_cast<std::int64_t>(m.type);
  if (name == "txid") return m.txid;
  if (name == "sender") return m.sender;
  if (name == "decision") return static_cast<std::int64_t>(m.decision);
  if (name == "participant_count") {
    return static_cast<std::int64_t>(m.participants.size());
  }
  return std::nullopt;
}

bool TpcStub::set_field(xk::Message& msg, const std::string& name,
                        std::int64_t value) const {
  if (name == "remote") {
    poke(msg, 0, 4, value);
    return true;
  }
  tpc::TpcMessage m;
  if (!tpc::TpcMessage::peek(msg, kTpcAt, m)) return false;
  if (name == "type") {
    poke(msg, kTpcAt, 1, value);
  } else if (name == "txid") {
    poke(msg, kTpcAt + 1, 4, value);
  } else if (name == "sender") {
    poke(msg, kTpcAt + 5, 4, value);
  } else if (name == "decision") {
    poke(msg, kTpcAt + 9, 1, value);
  } else {
    return false;
  }
  return true;
}

std::optional<xk::Message> TpcStub::generate(
    const std::map<std::string, std::string>& params) const {
  tpc::TpcMessage m;
  net::UdpMeta meta;
  meta.remote_port = 9900;
  meta.local_port = 9900;
  for (const auto& [key, value] : params) {
    if (key == "type") {
      if (value == "vote-req") {
        m.type = tpc::MsgType::kVoteReq;
      } else if (value == "vote-yes") {
        m.type = tpc::MsgType::kVoteYes;
      } else if (value == "vote-no") {
        m.type = tpc::MsgType::kVoteNo;
      } else if (value == "decision") {
        m.type = tpc::MsgType::kDecision;
      } else if (value == "ack") {
        m.type = tpc::MsgType::kAck;
      } else if (value == "decision-req") {
        m.type = tpc::MsgType::kDecisionReq;
      } else {
        return std::nullopt;
      }
      continue;
    }
    if (key == "decision") {
      if (value == "commit") {
        m.decision = tpc::Decision::kCommit;
      } else if (value == "abort") {
        m.decision = tpc::Decision::kAbort;
      } else {
        return std::nullopt;
      }
      continue;
    }
    auto v = parse_int(value);
    if (!v) return std::nullopt;
    if (key == "remote") {
      meta.remote = static_cast<std::uint32_t>(*v);
    } else if (key == "txid") {
      m.txid = static_cast<std::uint32_t>(*v);
    } else if (key == "sender") {
      m.sender = static_cast<std::uint32_t>(*v);
    } else {
      return std::nullopt;
    }
  }
  xk::Message msg = m.encode();
  meta.push_onto(msg);
  return msg;
}

}  // namespace pfi::core
