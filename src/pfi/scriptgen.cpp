#include "pfi/scriptgen.hpp"

#include <algorithm>
#include <sstream>

namespace pfi::core::scriptgen {

std::string to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kReorder: return "reorder";
  }
  return "?";
}

namespace {

/// Emit the action statement(s) for one fault kind.
std::string action_for(FaultKind kind, const Options& opts) {
  std::ostringstream os;
  switch (kind) {
    case FaultKind::kDrop:
      os << "xDrop cur_msg";
      break;
    case FaultKind::kDelay:
      os << "xDelay cur_msg " << opts.delay / sim::kMillisecond;
      break;
    case FaultKind::kDuplicate:
      os << "xDuplicate " << opts.duplicate_copies;
      break;
    case FaultKind::kCorrupt:
      os << "msg_set_byte " << opts.corrupt_offset
         << " [expr {int([dst_uniform 0 256])}]";
      break;
    case FaultKind::kReorder:
      os << "xHold sg_q\n"
         << "    if {[xHeldCount sg_q] >= " << opts.reorder_batch
         << "} { xReleaseReversed sg_q }";
      break;
  }
  return os.str();
}

}  // namespace

GeneratedTest generate(const ProtocolSpec& spec, const std::string& type,
                       FaultKind kind, const Options& opts) {
  GeneratedTest t;
  t.target_type = type;
  t.kind = kind;
  t.name = spec.name + "/" + type + "/" + to_string(kind);
  {
    std::ostringstream d;
    d << to_string(kind) << " " << type << " messages";
    if (opts.warmup_occurrences > 0) {
      d << " after the first " << opts.warmup_occurrences;
    }
    if (opts.max_faults > 0) d << " (at most " << opts.max_faults << ")";
    d << " on the " << (opts.on_send_side ? "send" : "receive") << " side";
    t.description = d.str();
  }

  std::ostringstream script;
  script << "# generated: " << t.name << "\n"
         << "set t [msg_type cur_msg]\n"
         << "if {$t eq \"" << type << "\"} {\n"
         << "  incr sg_seen\n";
  script << "  if {$sg_seen > " << opts.warmup_occurrences;
  if (opts.max_faults > 0) {
    script << " && $sg_seen <= "
           << opts.warmup_occurrences + opts.max_faults;
  }
  script << "} {\n"
         << "    msg_log cur_msg generated-" << to_string(kind) << "\n"
         << "    " << action_for(kind, opts) << "\n"
         << "  }\n"
         << "}\n";

  t.scripts.setup = "set sg_seen 0";
  if (opts.on_send_side) {
    t.scripts.send = script.str();
  } else {
    t.scripts.receive = script.str();
  }
  return t;
}

std::string window_fragment(const Window& w) {
  std::ostringstream os;
  std::string in;
  int open = 0;
  const auto push = [&](const std::string& cond) {
    os << in << "if {" << cond << "} {\n";
    in += "  ";
    ++open;
  };

  // Time gate. start == 0 and an unbounded end are trivially true and
  // omitted, so a whole-run window compiles to a guard-free fragment.
  {
    std::string cond;
    if (w.start > 0) {
      cond = "[now_ms] >= " + std::to_string(w.start / sim::kMillisecond);
    }
    if (w.end >= 0) {
      if (!cond.empty()) cond += " && ";
      cond += "[now_ms] < " + std::to_string(w.end / sim::kMillisecond);
    }
    if (!cond.empty()) push(cond);
  }

  // Type gate — skipped for "*" so the fragment stays clean under the
  // strict unused-var rule (same discipline as schedule.cpp).
  if (w.type != "*") {
    os << in << "set t [msg_type cur_msg]\n";
    push("$t eq \"" + w.type + "\"");
  }

  // Occurrence gate, counting only in-window matches. The counter is
  // emitted only when a bound actually reads it.
  if (w.after > 0 || w.count > 0) {
    const std::string var = "cf_" + w.tag;
    os << in << "incr " << var << "\n";
    std::string cond = "$" + var + " > " + std::to_string(w.after);
    if (w.count > 0) {
      cond += " && $" + var + " <= " + std::to_string(w.after + w.count);
    }
    push(cond);
  }

  os << in << "trace_note conform-" << to_string(w.kind) << " " << w.tag
     << "\n";
  if (w.kind == FaultKind::kReorder) {
    const std::string q = "cfq_" + w.tag;
    const int batch = std::max(2, w.opts.reorder_batch);
    os << in << "xHold " << q << "\n"
       << in << "if {[xHeldCount " << q << "] >= " << batch
       << "} { xReleaseReversed " << q << " }\n";
  } else {
    os << in << action_for(w.kind, w.opts) << "\n";
  }

  while (open-- > 0) {
    in.resize(in.size() - 2);
    os << in << "}\n";
  }
  return os.str();
}

failure::Scripts generate_windows(const std::vector<Window>& windows) {
  failure::Scripts s;
  std::ostringstream setup;
  std::ostringstream send;
  std::ostringstream receive;
  for (const Window& w : windows) {
    if (w.after > 0 || w.count > 0) setup << "set cf_" << w.tag << " 0\n";
    (w.opts.on_send_side ? send : receive) << window_fragment(w);
  }
  s.setup = setup.str();
  s.send = send.str();
  s.receive = receive.str();
  return s;
}

std::vector<GeneratedTest> generate_campaign(const ProtocolSpec& spec,
                                             const Options& opts) {
  return generate_campaign(spec,
                           {FaultKind::kDrop, FaultKind::kDelay,
                            FaultKind::kDuplicate, FaultKind::kCorrupt,
                            FaultKind::kReorder},
                           opts);
}

std::vector<GeneratedTest> generate_campaign(
    const ProtocolSpec& spec, const std::vector<FaultKind>& kinds,
    const Options& opts) {
  std::vector<GeneratedTest> out;
  out.reserve(spec.message_types.size() * kinds.size());
  for (const auto& type : spec.message_types) {
    for (FaultKind kind : kinds) {
      out.push_back(generate(spec, type, kind, opts));
    }
  }
  return out;
}

}  // namespace pfi::core::scriptgen
