// Recognition/generation stub for TCP segments as seen between the TCP and
// IP layers: messages start with the 5-byte IpMeta followed by the TCP
// header. The paper treats TCP as "a popular protocol ... whose packet
// formats are known", so this stub would "be supplied by the system".
#pragma once

#include "pfi/stub.hpp"

namespace pfi::core {

class TcpStub : public PacketStub {
 public:
  /// Types: tcp-syn, tcp-synack, tcp-fin, tcp-rst, tcp-ack (pure ack),
  /// tcp-data (carries payload), unknown.
  [[nodiscard]] std::string type_of(const xk::Message& msg) const override;
  [[nodiscard]] std::string summary(const xk::Message& msg) const override;

  /// Fields: remote, proto (IpMeta); src_port, dst_port, seq, ack, flags,
  /// window, len (TCP header).
  [[nodiscard]] std::optional<std::int64_t> field(
      const xk::Message& msg, const std::string& name) const override;
  bool set_field(xk::Message& msg, const std::string& name,
                 std::int64_t value) const override;

  /// Generation: params remote, src_port, dst_port, seq, ack, flags (int or
  /// "syn"/"ack"/"rst"/"fin"/"synack" names), window, payload. Only
  /// stateless segments (e.g. spurious ACKs, RSTs) can be generated here —
  /// per paper §2.1, stateful data generation belongs to the driver layer.
  [[nodiscard]] std::optional<xk::Message> generate(
      const std::map<std::string, std::string>& params) const override;
};

}  // namespace pfi::core
