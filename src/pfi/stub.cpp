#include "pfi/stub.hpp"

#include <sstream>

namespace pfi::core {

namespace {

std::optional<std::int64_t> parse_int(const std::string& s) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(s, &pos, 0);
    if (pos != s.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace

std::string ToyStub::type_of(const xk::Message& msg) const {
  if (msg.size() < 5) return "unknown";
  switch (msg.byte_at(0)) {
    case kAck: return "ack";
    case kNack: return "nack";
    case kGack: return "gack";
    case kData: return "data";
    default: return "unknown";
  }
}

std::string ToyStub::summary(const xk::Message& msg) const {
  std::ostringstream os;
  os << type_of(msg);
  if (msg.size() >= 5) {
    os << " id=" << field(msg, "id").value_or(0) << " len=" << msg.size() - 5;
  }
  return os.str();
}

std::optional<std::int64_t> ToyStub::field(const xk::Message& msg,
                                           const std::string& name) const {
  if (msg.size() < 5) return std::nullopt;
  if (name == "type") return msg.byte_at(0);
  if (name == "id") {
    xk::Reader r{msg.bytes().subspan(1)};
    return r.u32();
  }
  if (name == "len") return static_cast<std::int64_t>(msg.size()) - 5;
  return std::nullopt;
}

bool ToyStub::set_field(xk::Message& msg, const std::string& name,
                        std::int64_t value) const {
  if (msg.size() < 5) return false;
  if (name == "type") {
    msg.set_byte(0, static_cast<std::uint8_t>(value));
    return true;
  }
  if (name == "id") {
    const auto v = static_cast<std::uint32_t>(value);
    for (int i = 0; i < 4; ++i) {
      msg.set_byte(static_cast<std::size_t>(1 + i),
                   static_cast<std::uint8_t>(v >> (24 - 8 * i)));
    }
    return true;
  }
  return false;
}

std::optional<xk::Message> ToyStub::generate(
    const std::map<std::string, std::string>& params) const {
  std::uint8_t type = kData;
  std::uint32_t id = 0;
  std::string payload;
  if (auto it = params.find("type"); it != params.end()) {
    if (it->second == "ack") {
      type = kAck;
    } else if (it->second == "nack") {
      type = kNack;
    } else if (it->second == "gack") {
      type = kGack;
    } else if (it->second == "data") {
      type = kData;
    } else if (auto v = parse_int(it->second)) {
      type = static_cast<std::uint8_t>(*v);
    } else {
      return std::nullopt;
    }
  }
  if (auto it = params.find("id"); it != params.end()) {
    auto v = parse_int(it->second);
    if (!v) return std::nullopt;
    id = static_cast<std::uint32_t>(*v);
  }
  if (auto it = params.find("payload"); it != params.end()) {
    payload = it->second;
  }
  return make(type, id, payload);
}

xk::Message ToyStub::make(std::uint8_t type, std::uint32_t id,
                          std::string_view payload) {
  xk::Message msg{payload};
  xk::Writer w;
  w.u8(type);
  w.u32(id);
  w.push_onto(msg);
  return msg;
}

}  // namespace pfi::core
