#include "pfi/script_file.hpp"

#include <fstream>
#include <sstream>

#include "pfi/pfi_layer.hpp"

namespace pfi::core {

ScriptFile parse_script_sections(const std::string& contents) {
  ScriptFile out;
  std::string* current = &out.receive;  // default section
  int* current_line = &out.receive_line;
  std::istringstream is{contents};
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.rfind("#%setup", 0) == 0) {
      current = &out.setup;
      current_line = &out.setup_line;
      continue;
    }
    if (line.rfind("#%send", 0) == 0) {
      current = &out.send;
      current_line = &out.send_line;
      continue;
    }
    if (line.rfind("#%receive", 0) == 0) {
      current = &out.receive;
      current_line = &out.receive_line;
      continue;
    }
    if (current->empty()) *current_line = lineno;
    *current += line;
    *current += '\n';
  }
  return out;
}

std::string render_script_sections(const ScriptFile& file) {
  std::string out;
  auto section = [&](const char* marker, const std::string& body) {
    if (body.empty()) return;
    out += marker;
    out += '\n';
    out += body;
    if (!body.empty() && body.back() != '\n') out += '\n';
  };
  section("#%setup", file.setup);
  section("#%send", file.send);
  section("#%receive", file.receive);
  return out;
}

std::optional<ScriptFile> load_script_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_script_sections(buf.str());
}

bool install_script_file(PfiLayer& layer, const std::string& path) {
  auto file = load_script_file(path);
  if (!file) return false;
  if (!file->setup.empty()) {
    if (layer.run_setup(file->setup, file->setup_line).is_error()) {
      return false;
    }
  }
  layer.set_send_script(file->send, file->send_line);
  layer.set_receive_script(file->receive, file->receive_line);
  return true;
}

}  // namespace pfi::core
