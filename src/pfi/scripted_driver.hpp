// Script-driven driver layer (paper Figure 1(a)).
//
// "The driver and PFI layers run scripts which control their actions as
// messages are exchanged" — the driver sits ON TOP of the target protocol,
// generates protocol-valid traffic, and reacts to what comes up the stack.
// ScriptedDriver is that top layer with a Tcl interpreter of its own:
//
//   * a SETUP script runs once at start (typically arms an `after` loop
//     that keeps generating messages);
//   * a RECEIVE script runs for every message popped up to the driver,
//     with the usual msg_* commands available;
//   * `drv_send key value ...` builds a message through the generation stub
//     and pushes it DOWN the stack; `drv_send_hex` pushes raw bytes;
//   * counters/state persist in the interpreter, and the driver shares a
//     SyncBus with PFI layers so the two can "communicate with each other
//     during the test and coerce the system into certain states".
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "pfi/stub.hpp"
#include "pfi/sync.hpp"
#include "script/interp.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "trace/trace.hpp"
#include "xk/layer.hpp"

namespace pfi::core {

struct DriverStats {
  std::uint64_t generated = 0;
  std::uint64_t received = 0;
  std::uint64_t script_errors = 0;
};

class ScriptedDriver : public xk::Layer {
 public:
  struct Config {
    std::string node_name = "driver";
    trace::TraceLog* trace = nullptr;
    std::shared_ptr<PacketStub> stub;  // for drv_send / msg_* commands
    std::shared_ptr<SyncBus> sync;
    std::uint64_t rng_seed = 7;
  };

  ScriptedDriver(sim::Scheduler& sched, Config cfg);
  ~ScriptedDriver() override;

  /// Run the setup script once (arm timers, initialise counters).
  script::Result start(const std::string& setup_script);

  /// Script evaluated for each message popped up to the driver.
  void set_receive_script(std::string script) {
    receive_script_ = std::move(script);
  }

  void push(xk::Message msg) override { send_down(std::move(msg)); }
  void pop(xk::Message msg) override;

  [[nodiscard]] script::Interp& interp() { return *interp_; }
  [[nodiscard]] const DriverStats& stats() const { return stats_; }
  [[nodiscard]] const std::string& last_error() const { return last_error_; }

 private:
  void install_commands();
  void note_error(const script::Result& r);

  sim::Scheduler& sched_;
  Config cfg_;
  sim::Rng rng_;
  std::unique_ptr<script::Interp> interp_;
  std::string receive_script_;
  xk::Message* current_ = nullptr;  // during receive script only
  DriverStats stats_;
  std::string last_error_;
  std::shared_ptr<bool> alive_;
};

}  // namespace pfi::core
