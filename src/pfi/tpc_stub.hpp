// Recognition/generation stub for the 2PC protocol at the UDP boundary:
// messages start with UdpMeta (8) followed by the TpcMessage payload.
#pragma once

#include "pfi/stub.hpp"

namespace pfi::core {

class TpcStub : public PacketStub {
 public:
  /// Types: tpc-vote-req, tpc-vote-yes, tpc-vote-no, tpc-decision, tpc-ack,
  /// tpc-decision-req, unknown.
  [[nodiscard]] std::string type_of(const xk::Message& msg) const override;
  [[nodiscard]] std::string summary(const xk::Message& msg) const override;

  /// Fields: remote (UdpMeta), type, txid, sender, decision,
  /// participant_count.
  [[nodiscard]] std::optional<std::int64_t> field(
      const xk::Message& msg, const std::string& name) const override;
  bool set_field(xk::Message& msg, const std::string& name,
                 std::int64_t value) const override;

  /// Generation: params type (name), remote, txid, sender, decision
  /// ("commit"/"abort") — forged votes and decisions for byzantine probes.
  [[nodiscard]] std::optional<xk::Message> generate(
      const std::map<std::string, std::string>& params) const override;
};

}  // namespace pfi::core
