#include "pfi/gmp_stub.hpp"

#include <sstream>

#include "gmp/message.hpp"
#include "net/layers.hpp"

namespace pfi::core {

namespace {

constexpr std::size_t kRelAt = net::UdpMeta::kSize;
constexpr std::size_t kGmpAt = kRelAt + gmp::RelHeader::kSize;

std::optional<std::int64_t> parse_int(const std::string& s) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(s, &pos, 0);
    if (pos != s.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<gmp::MsgType> type_from_name(const std::string& name) {
  using gmp::MsgType;
  if (name == "heartbeat") return MsgType::kHeartbeat;
  if (name == "proclaim") return MsgType::kProclaim;
  if (name == "join") return MsgType::kJoin;
  if (name == "mc" || name == "membership-change") {
    return MsgType::kMembershipChange;
  }
  if (name == "ack" || name == "mc-ack") return MsgType::kMcAck;
  if (name == "nak" || name == "mc-nak") return MsgType::kMcNak;
  if (name == "commit") return MsgType::kCommit;
  if (name == "death" || name == "death-report") return MsgType::kDeathReport;
  return std::nullopt;
}

void poke(xk::Message& msg, std::size_t at, int width, std::int64_t value) {
  for (int i = 0; i < width; ++i) {
    msg.set_byte(at + static_cast<std::size_t>(i),
                 static_cast<std::uint8_t>(value >> (8 * (width - 1 - i))));
  }
}

}  // namespace

std::string GmpStub::type_of(const xk::Message& msg) const {
  gmp::RelHeader rel;
  if (!gmp::RelHeader::peek(msg, kRelAt, rel)) return "unknown";
  if (rel.kind == gmp::RelKind::kAck) return "rel-ack";
  gmp::GmpMessage m;
  if (!gmp::GmpMessage::peek(msg, kGmpAt, m)) return "unknown";
  switch (m.type) {
    case gmp::MsgType::kHeartbeat: return "gmp-heartbeat";
    case gmp::MsgType::kProclaim: return "gmp-proclaim";
    case gmp::MsgType::kJoin: return "gmp-join";
    case gmp::MsgType::kMembershipChange: return "gmp-mc";
    case gmp::MsgType::kMcAck: return "gmp-ack";
    case gmp::MsgType::kMcNak: return "gmp-nak";
    case gmp::MsgType::kCommit: return "gmp-commit";
    case gmp::MsgType::kDeathReport: return "gmp-death";
  }
  return "unknown";
}

std::string GmpStub::summary(const xk::Message& msg) const {
  const net::UdpMeta meta = net::UdpMeta::peek(msg);
  gmp::RelHeader rel;
  if (!gmp::RelHeader::peek(msg, kRelAt, rel)) return "runt gmp message";
  std::ostringstream os;
  if (rel.kind == gmp::RelKind::kAck) {
    os << "rel-ack seq=" << rel.seq;
  } else {
    gmp::GmpMessage m;
    if (gmp::GmpMessage::peek(msg, kGmpAt, m)) {
      os << m.summary();
      if (rel.kind == gmp::RelKind::kData) os << " [rel seq=" << rel.seq << "]";
    } else {
      os << "runt gmp payload";
    }
  }
  os << " remote=" << meta.remote;
  return os.str();
}

std::optional<std::int64_t> GmpStub::field(const xk::Message& msg,
                                           const std::string& name) const {
  const net::UdpMeta meta = net::UdpMeta::peek(msg);
  if (name == "remote") return meta.remote;
  if (name == "remote_port") return meta.remote_port;
  if (name == "local_port") return meta.local_port;
  gmp::RelHeader rel;
  if (!gmp::RelHeader::peek(msg, kRelAt, rel)) return std::nullopt;
  if (name == "rel_kind") return static_cast<std::int64_t>(rel.kind);
  if (name == "rel_seq") return rel.seq;
  gmp::GmpMessage m;
  if (!gmp::GmpMessage::peek(msg, kGmpAt, m)) return std::nullopt;
  if (name == "type") return static_cast<std::int64_t>(m.type);
  if (name == "sender") return m.sender;
  if (name == "originator") return m.originator;
  if (name == "subject") return m.subject;
  if (name == "view_id") return static_cast<std::int64_t>(m.view_id);
  if (name == "member_count") {
    return static_cast<std::int64_t>(m.members.size());
  }
  return std::nullopt;
}

bool GmpStub::set_field(xk::Message& msg, const std::string& name,
                        std::int64_t value) const {
  if (name == "remote") {
    poke(msg, 0, 4, value);
    return true;
  }
  if (name == "remote_port") {
    poke(msg, 4, 2, value);
    return true;
  }
  if (name == "local_port") {
    poke(msg, 6, 2, value);
    return true;
  }
  gmp::RelHeader rel;
  if (!gmp::RelHeader::peek(msg, kRelAt, rel)) return false;
  if (name == "rel_seq") {
    poke(msg, kRelAt + 1, 4, value);
    return true;
  }
  gmp::GmpMessage m;
  if (!gmp::GmpMessage::peek(msg, kGmpAt, m)) return false;
  if (name == "type") {
    poke(msg, kGmpAt, 1, value);
  } else if (name == "sender") {
    poke(msg, kGmpAt + 1, 4, value);
  } else if (name == "originator") {
    poke(msg, kGmpAt + 5, 4, value);
  } else if (name == "subject") {
    poke(msg, kGmpAt + 9, 4, value);
  } else if (name == "view_id") {
    poke(msg, kGmpAt + 13, 8, value);
  } else {
    return false;
  }
  return true;
}

std::optional<xk::Message> GmpStub::generate(
    const std::map<std::string, std::string>& params) const {
  gmp::GmpMessage m;
  net::UdpMeta meta;
  meta.remote_port = 7777;
  meta.local_port = 7777;
  for (const auto& [key, value] : params) {
    if (key == "type") {
      auto t = type_from_name(value);
      if (!t) return std::nullopt;
      m.type = *t;
      continue;
    }
    auto v = parse_int(value);
    if (!v) return std::nullopt;
    if (key == "remote") {
      meta.remote = static_cast<std::uint32_t>(*v);
    } else if (key == "remote_port") {
      meta.remote_port = static_cast<std::uint16_t>(*v);
    } else if (key == "local_port") {
      meta.local_port = static_cast<std::uint16_t>(*v);
    } else if (key == "sender") {
      m.sender = static_cast<std::uint32_t>(*v);
    } else if (key == "originator") {
      m.originator = static_cast<std::uint32_t>(*v);
    } else if (key == "subject") {
      m.subject = static_cast<std::uint32_t>(*v);
    } else if (key == "view_id") {
      m.view_id = static_cast<std::uint64_t>(*v);
    } else {
      return std::nullopt;
    }
  }
  xk::Message msg = m.encode();
  gmp::RelHeader rel;
  rel.kind = gmp::RelKind::kRaw;
  rel.push_onto(msg);
  meta.push_onto(msg);
  return msg;
}

}  // namespace pfi::core
