// Cross-node script synchronization (paper §2.3: "synchronizing scripts
// executed by PFI layers running on different nodes").
//
// A SyncBus is a blackboard of named string values shared by every PFI layer
// constructed with the same bus. Scripts use sync_set/sync_get/sync_incr to
// coordinate — e.g. "start dropping on node B once node A has seen 30
// packets". In the paper's distributed deployment this was a small
// coordination protocol; in the simulator a shared map gives identical
// semantics with deterministic ordering.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace pfi::core {

class SyncBus {
 public:
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const {
    auto it = vars_.find(name);
    return it == vars_.end() ? std::nullopt
                             : std::optional<std::string>{it->second};
  }

  void set(const std::string& name, std::string value) {
    vars_[name] = std::move(value);
  }

  /// Add `by` to an integer-valued entry (missing counts as 0); returns the
  /// new value.
  std::int64_t incr(const std::string& name, std::int64_t by = 1) {
    std::int64_t v = 0;
    if (auto it = vars_.find(name); it != vars_.end()) {
      try {
        v = std::stoll(it->second);
      } catch (...) {
        v = 0;
      }
    }
    v += by;
    vars_[name] = std::to_string(v);
    return v;
  }

  void clear() { vars_.clear(); }

 private:
  std::map<std::string, std::string> vars_;
};

}  // namespace pfi::core
