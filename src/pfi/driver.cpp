#include "pfi/driver.hpp"

namespace pfi::core {

void TcpDriver::start(sim::Duration interval, std::size_t chunk,
                      std::size_t count) {
  interval_ = interval;
  chunk_ = chunk;
  count_ = count;
  sent_ = 0;
  if (conn_->state() == tcp::State::kEstablished) {
    tick();
  } else {
    auto prev = conn_->on_established;
    conn_->on_established = [this, prev] {
      if (prev) prev();
      tick();
    };
  }
}

void TcpDriver::tick() {
  if (conn_->state() != tcp::State::kEstablished &&
      conn_->state() != tcp::State::kCloseWait) {
    return;
  }
  std::string chunk(chunk_, static_cast<char>('a' + (sent_ % 26)));
  conn_->send(chunk);
  ++sent_;
  if (on_chunk) on_chunk(sent_);
  if (count_ == 0 || sent_ < count_) {
    timer_.arm(interval_, [this] { tick(); });
  }
}

}  // namespace pfi::core
