// The PFI (probe/fault-injection) layer — the paper's contribution.
//
// Spliced between any two consecutive layers of a protocol stack
// (Stack::insert_below), it intercepts every message in both directions and
// evaluates a Tcl script per message:
//
//   * send filter   — runs on every push (message travelling DOWN),
//   * receive filter — runs on every pop (message travelling UP).
//
// Each filter runs in its own persistent interpreter, so scripts keep state
// (counters, phase flags) across messages; the two interpreters can poke
// each other's variables (peer_set/peer_get), and PFI layers on different
// nodes coordinate through a SyncBus (sync_set/sync_get). Scripts act on the
// current message with the operation families of paper §2.1:
//
//   message filtering    — msg_type, msg_field, msg_len, msg_byte, msg_log
//   message manipulation — xDrop, xDelay, xDuplicate, xCorrupt (msg_set_byte/
//                          msg_set_field/msg_truncate), xHold/xRelease
//                          (reordering)
//   message injection    — xInject (via the generation stub), xInjectHex
//
// plus utilities: distributions (dst_normal/dst_uniform/dst_exponential/
// dst_bernoulli), clocks (now_ms/now_us), deferred scripts (after), and
// trace_note. A script that neither drops, holds, nor delays the current
// message lets it pass unchanged; a script error is counted, logged, and the
// message passes (fail-open, so a typo can't silently black-hole a link).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "pfi/stub.hpp"
#include "pfi/sync.hpp"
#include "script/interp.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "trace/trace.hpp"
#include "xk/layer.hpp"

namespace pfi::core {

struct PfiStats {
  std::uint64_t sends_intercepted = 0;
  std::uint64_t recvs_intercepted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t injected = 0;
  std::uint64_t held = 0;
  std::uint64_t released = 0;
  std::uint64_t script_errors = 0;
};

struct PfiConfig {
  std::string node_name = "node";
  trace::TraceLog* trace = nullptr;              // optional
  std::shared_ptr<PacketStub> stub;              // optional (raw mode if null)
  std::shared_ptr<SyncBus> sync;                 // optional
  std::uint64_t rng_seed = 42;
};

class PfiLayer : public xk::Layer {
 public:
  PfiLayer(sim::Scheduler& sched, PfiConfig cfg);
  ~PfiLayer() override;

  /// Install filter scripts. Empty script = pass-through. `first_line` is
  /// the 1-based line the script text starts on in its source file (a
  /// sectioned .tcl file — ScriptFile records it), so script errors report
  /// file-absolute lines.
  void set_send_script(std::string script, int first_line = 1) {
    send_script_ = std::move(script);
    send_script_line_ = first_line;
  }
  void set_receive_script(std::string script, int first_line = 1) {
    receive_script_ = std::move(script);
    receive_script_line_ = first_line;
  }

  /// Evaluate a script once in BOTH interpreters (setup: constants, procs,
  /// `after` schedules). Returns the receive interpreter's result; a send-
  /// side error wins if both fail. On error, Result::line is shifted by
  /// `first_line` so it is file-absolute.
  script::Result run_setup(const std::string& script, int first_line = 1);

  /// Register a user-defined command into both interpreters (the paper's
  /// "user defined procedures ... written in C and linked into the tool").
  void register_command(const std::string& name, script::Interp::Command fn);

  [[nodiscard]] script::Interp& send_interp() { return *send_interp_; }
  [[nodiscard]] script::Interp& receive_interp() { return *receive_interp_; }

  void push(xk::Message msg) override;
  void pop(xk::Message msg) override;

  [[nodiscard]] const PfiStats& stats() const { return stats_; }
  [[nodiscard]] const std::string& last_error() const { return last_error_; }
  [[nodiscard]] const std::string& node_name() const { return cfg_.node_name; }
  [[nodiscard]] PacketStub* stub() const { return cfg_.stub.get(); }

  /// Messages currently parked in a hold queue.
  [[nodiscard]] std::size_t held_count(const std::string& queue) const;

  /// Attach a metrics registry: per-message-type counters
  /// ("pfi.msg_type.ka-heartbeat") and a message-size histogram, counted
  /// live in run_filter. Null detaches (the default). The registry must
  /// outlive the layer or the next detach.
  void set_metrics(obs::Registry* registry);

 private:
  enum class Direction { kDown, kUp };  // push = down (send), pop = up (recv)

  struct MsgCtx {
    xk::Message msg;
    Direction dir = Direction::kDown;
    bool dropped = false;
    bool corrupted = false;
    bool held = false;  // xHold already moved the message into a queue
    sim::Duration delay = 0;
    int duplicates = 0;
  };

  struct HeldMsg {
    xk::Message msg;
    Direction dir;
  };

  void run_filter(Direction dir, xk::Message msg);
  void forward(Direction dir, xk::Message msg);
  void install_commands(script::Interp& interp, Direction dir);
  script::Interp& interp_for(Direction dir) {
    return dir == Direction::kDown ? *send_interp_ : *receive_interp_;
  }
  script::Interp& other_interp(Direction dir) {
    return dir == Direction::kDown ? *receive_interp_ : *send_interp_;
  }
  [[nodiscard]] std::string type_of(const xk::Message& msg) const;
  void trace_packet(const MsgCtx& ctx, const std::string& verb,
                    const std::string& note) const;
  void count_message(const xk::Message& msg);

  sim::Scheduler& sched_;
  PfiConfig cfg_;
  sim::Rng rng_;
  std::unique_ptr<script::Interp> send_interp_;
  std::unique_ptr<script::Interp> receive_interp_;
  std::string send_script_;
  std::string receive_script_;
  int send_script_line_ = 1;
  int receive_script_line_ = 1;
  MsgCtx* current_ = nullptr;  // valid only during run_filter
  std::map<std::string, std::deque<HeldMsg>> hold_queues_;
  PfiStats stats_;
  std::string last_error_;
  obs::Registry* metrics_ = nullptr;
  obs::Histogram* m_msg_bytes_ = nullptr;
  std::map<std::string, obs::Counter*> m_type_counters_;
  // Single-entry hot cache: protocols emit long runs of one message type,
  // so most messages skip the map lookup entirely.
  std::string m_last_type_;
  obs::Counter* m_last_type_counter_ = nullptr;
  // `after` callbacks capture `this`; invalidate them on destruction.
  std::shared_ptr<bool> alive_;
};

}  // namespace pfi::core
