// Failure-model library (paper §2.2).
//
// Each function compiles one of the classic distributed-systems failure
// models into PFI filter scripts, so a test can say "make this participant
// suffer send-omission failures with p = 0.3" in one call. The models are
// ordered by severity exactly as the paper presents them; anything tolerant
// of a later model tolerates the earlier ones.
//
// All are expressed purely as scripts over the generic PFI commands — no
// C++ hooks — demonstrating the paper's claim that new failure scenarios
// need no recompilation.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace pfi::core::failure {

/// What to install where: `send` goes to set_send_script, `receive` to
/// set_receive_script, `setup` (if non-empty) to run_setup first.
struct Scripts {
  std::string setup;
  std::string send;
  std::string receive;
};

/// Process crash at absolute simulated time `at`: the participant behaves
/// correctly, then halts — nothing in, nothing out, forever.
Scripts process_crash(sim::Duration at);

/// Link crash at `at`: messages in the instrumented direction(s) are lost;
/// nothing is delayed, duplicated or corrupted.
Scripts link_crash(sim::Duration at);

/// Send-omission: each outgoing message is independently dropped with
/// probability `p`.
Scripts send_omission(double p);

/// Receive-omission: each incoming message is independently dropped with
/// probability `p`.
Scripts receive_omission(double p);

/// General omission: both directions, probability `p` each.
Scripts general_omission(double p);

/// Timing failure: each message (both directions) is delayed by a uniform
/// random duration in [lo, hi] — a link "transporting messages slower than
/// its specification".
Scripts timing_failure(sim::Duration lo, sim::Duration hi);

/// Byzantine corruption: with probability `p`, overwrite the byte at
/// `offset` of an outgoing message with a value drawn uniformly from 0..255.
Scripts byzantine_corruption(double p, std::size_t offset);

/// Byzantine duplication: with probability `p`, send `copies` extra copies
/// of each outgoing message ("claim to have received" / spurious resend).
Scripts byzantine_duplication(double p, int copies);

/// Byzantine reordering: hold every outgoing message and release the queue
/// in reverse order once `batch` messages have accumulated.
Scripts byzantine_reorder(int batch);

}  // namespace pfi::core::failure
