#include "pfi/pfi_layer.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace pfi::core {

namespace {

using script::Result;

std::optional<std::int64_t> to_int(const std::string& s) {
  std::int64_t v = 0;
  auto r = std::from_chars(s.data(), s.data() + s.size(), v, 10);
  if (r.ec == std::errc{} && r.ptr == s.data() + s.size()) return v;
  // Accept 0x hex too (message types are often written in hex).
  if (s.size() > 2 && (s[0] == '0') && (s[1] == 'x' || s[1] == 'X')) {
    r = std::from_chars(s.data() + 2, s.data() + s.size(), v, 16);
    if (r.ec == std::errc{} && r.ptr == s.data() + s.size()) return v;
  }
  return std::nullopt;
}

std::optional<double> to_double(const std::string& s) {
  double v = 0;
  auto r = std::from_chars(s.data(), s.data() + s.size(), v);
  if (r.ec == std::errc{} && r.ptr == s.data() + s.size()) return v;
  return std::nullopt;
}

std::string to_hex(const xk::Message& msg) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(msg.size() * 2);
  for (std::uint8_t b : msg.bytes()) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

std::optional<xk::Message> from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  bytes.reserve(hex.size() / 2);
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    bytes.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return xk::Message{std::move(bytes)};
}

}  // namespace

PfiLayer::PfiLayer(sim::Scheduler& sched, PfiConfig cfg)
    : Layer("pfi"),
      sched_(sched),
      cfg_(std::move(cfg)),
      rng_(cfg_.rng_seed),
      send_interp_(std::make_unique<script::Interp>()),
      receive_interp_(std::make_unique<script::Interp>()),
      alive_(std::make_shared<bool>(true)) {
  install_commands(*send_interp_, Direction::kDown);
  install_commands(*receive_interp_, Direction::kUp);
}

PfiLayer::~PfiLayer() { *alive_ = false; }

script::Result PfiLayer::run_setup(const std::string& script, int first_line) {
  Result s = send_interp_->eval(script);
  Result r = receive_interp_->eval(script);
  Result out = s.is_error() ? std::move(s) : std::move(r);
  if (out.is_error() && out.line > 0) out.line += first_line - 1;
  return out;
}

void PfiLayer::register_command(const std::string& name,
                                script::Interp::Command fn) {
  send_interp_->register_command(name, fn);
  receive_interp_->register_command(name, std::move(fn));
}

void PfiLayer::push(xk::Message msg) {
  ++stats_.sends_intercepted;
  run_filter(Direction::kDown, std::move(msg));
}

void PfiLayer::pop(xk::Message msg) {
  ++stats_.recvs_intercepted;
  run_filter(Direction::kUp, std::move(msg));
}

std::size_t PfiLayer::held_count(const std::string& queue) const {
  auto it = hold_queues_.find(queue);
  return it == hold_queues_.end() ? 0 : it->second.size();
}

void PfiLayer::set_metrics(obs::Registry* registry) {
  metrics_ = registry;
  m_type_counters_.clear();
  m_last_type_.clear();
  m_last_type_counter_ = nullptr;
  m_msg_bytes_ =
      registry != nullptr ? &registry->histogram("pfi.msg_bytes") : nullptr;
}

void PfiLayer::count_message(const xk::Message& msg) {
  // Per-message cost budget: one histogram observe + one counter inc via the
  // single-entry type cache. Filter-invocation counts need no live counter —
  // they are already in PfiStats (sends/recvs_intercepted), exported into
  // the registry at collect time.
  if (metrics_ == nullptr) return;
  PFI_OBS_OBSERVE(m_msg_bytes_, msg.size());
  std::string type = type_of(msg);
  if (m_last_type_counter_ == nullptr || type != m_last_type_) {
    auto [it, fresh] = m_type_counters_.try_emplace(std::move(type));
    if (fresh) {
      it->second = &metrics_->counter("pfi.msg_type." + it->first);
    }
    m_last_type_ = it->first;
    m_last_type_counter_ = it->second;
  }
  PFI_OBS_INC(m_last_type_counter_);
}

void PfiLayer::run_filter(Direction dir, xk::Message msg) {
  count_message(msg);
  MsgCtx ctx;
  ctx.msg = std::move(msg);
  ctx.dir = dir;

  const std::string& text =
      dir == Direction::kDown ? send_script_ : receive_script_;
  if (!text.empty()) {
    current_ = &ctx;
    Result r = interp_for(dir).eval(text);
    current_ = nullptr;
    if (r.is_error()) {
      ++stats_.script_errors;
      // Report the file-absolute line of the failing top-level command
      // ("line 12: invalid command name ..."), offset by where this
      // section sits in its source file.
      last_error_ = r.value;
      if (r.line > 0) {
        const int offset =
            dir == Direction::kDown ? send_script_line_ : receive_script_line_;
        last_error_ = "line " + std::to_string(r.line + offset - 1) + ": " +
                      r.value;
      }
      if (cfg_.trace != nullptr) {
        cfg_.trace->add(sched_.now(), cfg_.node_name, "error", "pfi-script",
                        last_error_);
      }
    }
  }

  if (ctx.held) return;  // already parked in a hold queue by xHold
  if (ctx.dropped) {
    ++stats_.dropped;
    return;
  }
  if (ctx.corrupted) ++stats_.corrupted;
  const int copies = 1 + ctx.duplicates;
  stats_.duplicated += static_cast<std::uint64_t>(ctx.duplicates);
  if (ctx.delay > 0) ++stats_.delayed;
  for (int i = 0; i < copies; ++i) {
    if (ctx.delay > 0) {
      sched_.schedule(ctx.delay,
                      [this, alive = alive_, dir, m = ctx.msg]() mutable {
                        if (*alive) forward(dir, std::move(m));
                      });
    } else {
      forward(dir, ctx.msg);
    }
  }
}

void PfiLayer::forward(Direction dir, xk::Message msg) {
  if (dir == Direction::kDown) {
    send_down(std::move(msg));
  } else {
    send_up(std::move(msg));
  }
}

std::string PfiLayer::type_of(const xk::Message& msg) const {
  if (cfg_.stub == nullptr) return "raw";
  return cfg_.stub->type_of(msg);
}

void PfiLayer::trace_packet(const MsgCtx& ctx, const std::string& verb,
                            const std::string& note) const {
  if (cfg_.trace == nullptr) return;
  std::string detail =
      cfg_.stub != nullptr ? cfg_.stub->summary(ctx.msg) : ctx.msg.printable();
  if (!note.empty()) detail += " | " + note;
  cfg_.trace->add(sched_.now(), cfg_.node_name, verb, type_of(ctx.msg),
                  detail);
}

// ---------------------------------------------------------------------------
// Script command library
// ---------------------------------------------------------------------------

void PfiLayer::install_commands(script::Interp& interp, Direction dir) {
  using Args = std::vector<std::string>;
  const char* dir_name = dir == Direction::kDown ? "send" : "recv";

  auto need_msg = [this]() -> MsgCtx* { return current_; };

  // The paper's scripts pass a `cur_msg` handle ("msg_type cur_msg"); there
  // is exactly one current message per filter run, so the handle argument is
  // accepted and ignored.

  interp.register_command("msg_type", [this, need_msg](script::Interp&,
                                                       const Args&) -> Result {
    MsgCtx* ctx = need_msg();
    if (ctx == nullptr) return Result::error("msg_type: no current message");
    return Result::ok(type_of(ctx->msg));
  });

  interp.register_command("msg_len", [need_msg](script::Interp&,
                                                const Args&) -> Result {
    MsgCtx* ctx = need_msg();
    if (ctx == nullptr) return Result::error("msg_len: no current message");
    return Result::ok(std::to_string(ctx->msg.size()));
  });

  interp.register_command(
      "msg_byte", [need_msg](script::Interp&, const Args& a) -> Result {
        MsgCtx* ctx = need_msg();
        if (ctx == nullptr) return Result::error("msg_byte: no current message");
        if (a.size() != 2) return Result::error("usage: msg_byte index");
        auto i = to_int(a[1]);
        if (!i || *i < 0) return Result::error("msg_byte: bad index");
        return Result::ok(
            std::to_string(ctx->msg.byte_at(static_cast<std::size_t>(*i))));
      });

  interp.register_command(
      "msg_set_byte", [need_msg](script::Interp&, const Args& a) -> Result {
        MsgCtx* ctx = need_msg();
        if (ctx == nullptr) {
          return Result::error("msg_set_byte: no current message");
        }
        if (a.size() != 3) return Result::error("usage: msg_set_byte index value");
        auto i = to_int(a[1]);
        auto v = to_int(a[2]);
        if (!i || !v || *i < 0) return Result::error("msg_set_byte: bad args");
        ctx->msg.set_byte(static_cast<std::size_t>(*i),
                          static_cast<std::uint8_t>(*v));
        ctx->corrupted = true;
        return Result::ok();
      });

  interp.register_command(
      "msg_truncate", [need_msg](script::Interp&, const Args& a) -> Result {
        MsgCtx* ctx = need_msg();
        if (ctx == nullptr) {
          return Result::error("msg_truncate: no current message");
        }
        if (a.size() != 2) return Result::error("usage: msg_truncate length");
        auto n = to_int(a[1]);
        if (!n || *n < 0) return Result::error("msg_truncate: bad length");
        ctx->msg.truncate(static_cast<std::size_t>(*n));
        ctx->corrupted = true;
        return Result::ok();
      });

  interp.register_command(
      "msg_field", [this, need_msg](script::Interp&, const Args& a) -> Result {
        MsgCtx* ctx = need_msg();
        if (ctx == nullptr) return Result::error("msg_field: no current message");
        if (a.size() != 2) return Result::error("usage: msg_field name");
        if (cfg_.stub == nullptr) return Result::error("msg_field: no stub");
        auto v = cfg_.stub->field(ctx->msg, a[1]);
        if (!v) return Result::error("msg_field: no field \"" + a[1] + "\"");
        return Result::ok(std::to_string(*v));
      });

  interp.register_command(
      "msg_set_field",
      [this, need_msg](script::Interp&, const Args& a) -> Result {
        MsgCtx* ctx = need_msg();
        if (ctx == nullptr) {
          return Result::error("msg_set_field: no current message");
        }
        if (a.size() != 3) return Result::error("usage: msg_set_field name value");
        if (cfg_.stub == nullptr) return Result::error("msg_set_field: no stub");
        auto v = to_int(a[2]);
        if (!v) return Result::error("msg_set_field: bad value");
        if (!cfg_.stub->set_field(ctx->msg, a[1], *v)) {
          return Result::error("msg_set_field: can't set \"" + a[1] + "\"");
        }
        ctx->corrupted = true;
        return Result::ok();
      });

  interp.register_command("msg_hex", [need_msg](script::Interp&,
                                                const Args&) -> Result {
    MsgCtx* ctx = need_msg();
    if (ctx == nullptr) return Result::error("msg_hex: no current message");
    return Result::ok(to_hex(ctx->msg));
  });

  interp.register_command(
      "msg_log",
      [this, need_msg, dir_name](script::Interp&, const Args& a) -> Result {
        MsgCtx* ctx = need_msg();
        if (ctx == nullptr) return Result::error("msg_log: no current message");
        std::string note;
        // Skip a `cur_msg` handle argument; anything else is a note.
        for (std::size_t i = 1; i < a.size(); ++i) {
          if (a[i] == "cur_msg") continue;
          if (!note.empty()) note += ' ';
          note += a[i];
        }
        trace_packet(*ctx, dir_name, note);
        return Result::ok();
      });

  // --- manipulation ---------------------------------------------------------

  interp.register_command("xDrop", [need_msg](script::Interp&,
                                              const Args&) -> Result {
    MsgCtx* ctx = need_msg();
    if (ctx == nullptr) return Result::error("xDrop: no current message");
    ctx->dropped = true;
    return Result::ok();
  });

  interp.register_command(
      "xDelay", [need_msg](script::Interp&, const Args& a) -> Result {
        MsgCtx* ctx = need_msg();
        if (ctx == nullptr) return Result::error("xDelay: no current message");
        if (a.size() != 2 && !(a.size() == 3 && a[1] == "cur_msg")) {
          return Result::error("usage: xDelay ?cur_msg? milliseconds");
        }
        auto ms = to_int(a.back());
        if (!ms || *ms < 0) return Result::error("xDelay: bad delay");
        ctx->delay = sim::msec(*ms);
        return Result::ok();
      });

  interp.register_command(
      "xDuplicate", [need_msg](script::Interp&, const Args& a) -> Result {
        MsgCtx* ctx = need_msg();
        if (ctx == nullptr) return Result::error("xDuplicate: no current message");
        std::int64_t n = 1;
        if (a.size() == 2) {
          auto v = to_int(a[1]);
          if (!v || *v < 0) return Result::error("xDuplicate: bad count");
          n = *v;
        }
        ctx->duplicates = static_cast<int>(n);
        return Result::ok();
      });

  interp.register_command(
      "xHold", [this, need_msg](script::Interp&, const Args& a) -> Result {
        MsgCtx* ctx = need_msg();
        if (ctx == nullptr) return Result::error("xHold: no current message");
        if (a.size() != 2) return Result::error("usage: xHold queueName");
        if (ctx->held) return Result::error("xHold: message already held");
        // Park immediately so xHeldCount in the same filter run sees it —
        // that is what makes "hold until N accumulate, then release" work.
        hold_queues_[a[1]].push_back(HeldMsg{std::move(ctx->msg), ctx->dir});
        ctx->held = true;
        ++stats_.held;
        return Result::ok();
      });

  auto release = [this](const std::string& queue, bool reversed,
                        std::int64_t count) {
    auto it = hold_queues_.find(queue);
    if (it == hold_queues_.end()) return;
    auto& q = it->second;
    std::vector<HeldMsg> batch;
    while (!q.empty() && (count < 0 ||
                          static_cast<std::int64_t>(batch.size()) < count)) {
      if (reversed) {
        batch.push_back(std::move(q.back()));
        q.pop_back();
      } else {
        batch.push_back(std::move(q.front()));
        q.pop_front();
      }
    }
    for (auto& held : batch) {
      ++stats_.released;
      forward(held.dir, std::move(held.msg));
    }
  };

  interp.register_command(
      "xRelease", [release](script::Interp&, const Args& a) -> Result {
        if (a.size() != 2 && a.size() != 3) {
          return Result::error("usage: xRelease queueName ?count?");
        }
        std::int64_t count = -1;
        if (a.size() == 3) {
          auto v = to_int(a[2]);
          if (!v) return Result::error("xRelease: bad count");
          count = *v;
        }
        release(a[1], false, count);
        return Result::ok();
      });

  interp.register_command(
      "xReleaseReversed", [release](script::Interp&, const Args& a) -> Result {
        if (a.size() != 2) return Result::error("usage: xReleaseReversed queueName");
        release(a[1], true, -1);
        return Result::ok();
      });

  interp.register_command(
      "xHeldCount", [this](script::Interp&, const Args& a) -> Result {
        if (a.size() != 2) return Result::error("usage: xHeldCount queueName");
        return Result::ok(std::to_string(held_count(a[1])));
      });

  // Kill the *hosting* process, not the simulated node — a fault-injection
  // fixture for testing that a crashing testbed is contained by the
  // campaign sandbox (--isolate). Never use outside sandboxed runs.
  interp.register_command(
      "xCrashProcess", [](script::Interp&, const Args& a) -> Result {
        if (a.size() != 1) return Result::error("usage: xCrashProcess");
        std::fflush(nullptr);  // don't lose buffered trace output
        std::abort();          // SIGABRT; unreachable return
      });

  // --- injection --------------------------------------------------------------

  auto inject = [this](Direction d, xk::Message msg, sim::Duration delay) {
    ++stats_.injected;
    if (cfg_.trace != nullptr) {
      std::string detail = cfg_.stub != nullptr ? cfg_.stub->summary(msg)
                                                : msg.printable();
      cfg_.trace->add(sched_.now(), cfg_.node_name, "inject", type_of(msg),
                      detail);
    }
    if (delay > 0) {
      sched_.schedule(delay, [this, alive = alive_, d, m = std::move(msg)]() mutable {
        if (*alive) forward(d, std::move(m));
      });
    } else {
      forward(d, std::move(msg));
    }
  };

  interp.register_command(
      "xInject", [this, inject](script::Interp&, const Args& a) -> Result {
        // xInject up|down key value ?key value ...?
        if (a.size() < 2 || (a.size() % 2) != 0) {
          return Result::error("usage: xInject up|down ?key value ...?");
        }
        if (a[1] != "up" && a[1] != "down") {
          return Result::error("xInject: direction must be up or down");
        }
        if (cfg_.stub == nullptr) return Result::error("xInject: no stub");
        std::map<std::string, std::string> params;
        for (std::size_t i = 2; i + 1 < a.size(); i += 2) {
          params[a[i]] = a[i + 1];
        }
        auto msg = cfg_.stub->generate(params);
        if (!msg) return Result::error("xInject: stub can't generate message");
        inject(a[1] == "down" ? Direction::kDown : Direction::kUp,
               std::move(*msg), 0);
        return Result::ok();
      });

  interp.register_command(
      "xInjectHex", [inject](script::Interp&, const Args& a) -> Result {
        if (a.size() != 3 && a.size() != 4) {
          return Result::error("usage: xInjectHex up|down hexBytes ?delayMs?");
        }
        if (a[1] != "up" && a[1] != "down") {
          return Result::error("xInjectHex: direction must be up or down");
        }
        auto msg = from_hex(a[2]);
        if (!msg) return Result::error("xInjectHex: bad hex string");
        sim::Duration delay = 0;
        if (a.size() == 4) {
          auto ms = to_int(a[3]);
          if (!ms || *ms < 0) return Result::error("xInjectHex: bad delay");
          delay = sim::msec(*ms);
        }
        inject(a[1] == "down" ? Direction::kDown : Direction::kUp,
               std::move(*msg), delay);
        return Result::ok();
      });

  // --- clocks, distributions, misc --------------------------------------------

  interp.register_command("now_us", [this](script::Interp&, const Args&) {
    return Result::ok(std::to_string(sched_.now()));
  });
  interp.register_command("now_ms", [this](script::Interp&, const Args&) {
    return Result::ok(std::to_string(sched_.now() / sim::kMillisecond));
  });
  interp.register_command("now_s", [this](script::Interp&, const Args&) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", sim::to_seconds(sched_.now()));
    return Result::ok(buf);
  });

  interp.register_command(
      "dst_normal", [this](script::Interp&, const Args& a) -> Result {
        if (a.size() != 3) return Result::error("usage: dst_normal mean variance");
        auto mean = to_double(a[1]);
        auto var = to_double(a[2]);
        if (!mean || !var) return Result::error("dst_normal: bad args");
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6f", rng_.normal(*mean, *var));
        return Result::ok(buf);
      });

  interp.register_command(
      "dst_uniform", [this](script::Interp&, const Args& a) -> Result {
        if (a.size() != 3) return Result::error("usage: dst_uniform lo hi");
        auto lo = to_double(a[1]);
        auto hi = to_double(a[2]);
        if (!lo || !hi) return Result::error("dst_uniform: bad args");
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6f", rng_.uniform(*lo, *hi));
        return Result::ok(buf);
      });

  interp.register_command(
      "dst_exponential", [this](script::Interp&, const Args& a) -> Result {
        if (a.size() != 2) return Result::error("usage: dst_exponential mean");
        auto mean = to_double(a[1]);
        if (!mean) return Result::error("dst_exponential: bad args");
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6f", rng_.exponential(*mean));
        return Result::ok(buf);
      });

  interp.register_command(
      "dst_bernoulli", [this](script::Interp&, const Args& a) -> Result {
        if (a.size() != 2) return Result::error("usage: dst_bernoulli p");
        auto p = to_double(a[1]);
        if (!p) return Result::error("dst_bernoulli: bad args");
        return Result::ok(rng_.bernoulli(*p) ? "1" : "0");
      });

  // --- cross-interpreter and cross-node state ----------------------------------

  interp.register_command(
      "peer_set", [this, dir](script::Interp&, const Args& a) -> Result {
        if (a.size() != 3) return Result::error("usage: peer_set name value");
        other_interp(dir).set_global(a[1], a[2]);
        return Result::ok();
      });

  interp.register_command(
      "peer_get", [this, dir](script::Interp&, const Args& a) -> Result {
        if (a.size() != 2 && a.size() != 3) {
          return Result::error("usage: peer_get name ?default?");
        }
        auto v = other_interp(dir).get_global(a[1]);
        if (v) return Result::ok(*v);
        if (a.size() == 3) return Result::ok(a[2]);
        return Result::error("peer_get: no such variable \"" + a[1] + "\"");
      });

  interp.register_command(
      "sync_set", [this](script::Interp&, const Args& a) -> Result {
        if (a.size() != 3) return Result::error("usage: sync_set name value");
        if (cfg_.sync == nullptr) return Result::error("sync_set: no sync bus");
        cfg_.sync->set(a[1], a[2]);
        return Result::ok();
      });

  interp.register_command(
      "sync_get", [this](script::Interp&, const Args& a) -> Result {
        if (a.size() != 2 && a.size() != 3) {
          return Result::error("usage: sync_get name ?default?");
        }
        if (cfg_.sync == nullptr) return Result::error("sync_get: no sync bus");
        auto v = cfg_.sync->get(a[1]);
        if (v) return Result::ok(*v);
        if (a.size() == 3) return Result::ok(a[2]);
        return Result::error("sync_get: no such entry \"" + a[1] + "\"");
      });

  interp.register_command(
      "sync_incr", [this](script::Interp&, const Args& a) -> Result {
        if (a.size() != 2 && a.size() != 3) {
          return Result::error("usage: sync_incr name ?by?");
        }
        if (cfg_.sync == nullptr) return Result::error("sync_incr: no sync bus");
        std::int64_t by = 1;
        if (a.size() == 3) {
          auto v = to_int(a[2]);
          if (!v) return Result::error("sync_incr: bad increment");
          by = *v;
        }
        return Result::ok(std::to_string(cfg_.sync->incr(a[1], by)));
      });

  interp.register_command(
      "after", [this, dir](script::Interp&, const Args& a) -> Result {
        if (a.size() != 3) return Result::error("usage: after milliseconds script");
        auto ms = to_int(a[1]);
        if (!ms || *ms < 0) return Result::error("after: bad delay");
        sched_.schedule(sim::msec(*ms),
                        [this, alive = alive_, dir, body = a[2]] {
                          if (!*alive) return;
                          Result r = interp_for(dir).eval(body);
                          if (r.is_error()) {
                            ++stats_.script_errors;
                            last_error_ = r.value;
                          }
                        });
        return Result::ok();
      });

  interp.register_command(
      "trace_note", [this](script::Interp&, const Args& a) -> Result {
        std::string note;
        for (std::size_t i = 1; i < a.size(); ++i) {
          if (!note.empty()) note += ' ';
          note += a[i];
        }
        if (cfg_.trace != nullptr) {
          cfg_.trace->add(sched_.now(), cfg_.node_name, "note", "pfi-note",
                          note);
        }
        return Result::ok();
      });

  interp.register_command("node_name", [this](script::Interp&, const Args&) {
    return Result::ok(cfg_.node_name);
  });

  interp.register_command("filter_dir", [dir_name](script::Interp&,
                                                   const Args&) {
    return Result::ok(dir_name);
  });
}

}  // namespace pfi::core
