// Recognition/generation stub for GMP traffic at the reliable-layer/UDP
// boundary: messages start with UdpMeta (8) + RelHeader (5) + GmpMessage.
// This stub plays the role of the protocol-developer-supplied stub of paper
// §2.1 — the testing organisation wrote it from the daemon's packet formats.
#pragma once

#include "pfi/stub.hpp"

namespace pfi::core {

class GmpStub : public PacketStub {
 public:
  /// Types: rel-ack, gmp-heartbeat, gmp-proclaim, gmp-join, gmp-mc,
  /// gmp-ack, gmp-nak, gmp-commit, gmp-death, unknown.
  [[nodiscard]] std::string type_of(const xk::Message& msg) const override;
  [[nodiscard]] std::string summary(const xk::Message& msg) const override;

  /// Fields: remote, remote_port, local_port (UdpMeta); rel_kind, rel_seq;
  /// type, sender, originator, subject, view_id, member_count.
  [[nodiscard]] std::optional<std::int64_t> field(
      const xk::Message& msg, const std::string& name) const override;
  bool set_field(xk::Message& msg, const std::string& name,
                 std::int64_t value) const override;

  /// Generation: params type (name), remote, sender, originator, subject,
  /// view_id — builds a RAW-shipped GMP message (spurious heartbeats, forged
  /// death reports: the byzantine probes of §2.2).
  [[nodiscard]] std::optional<xk::Message> generate(
      const std::map<std::string, std::string>& params) const override;
};

}  // namespace pfi::core
