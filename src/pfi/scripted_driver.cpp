#include "pfi/scripted_driver.hpp"

#include <charconv>

namespace pfi::core {

namespace {

using script::Result;

std::optional<xk::Message> hex_to_message(const std::string& hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    bytes.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return xk::Message{std::move(bytes)};
}

}  // namespace

ScriptedDriver::ScriptedDriver(sim::Scheduler& sched, Config cfg)
    : Layer("driver"),
      sched_(sched),
      cfg_(std::move(cfg)),
      rng_(cfg_.rng_seed),
      interp_(std::make_unique<script::Interp>()),
      alive_(std::make_shared<bool>(true)) {
  install_commands();
}

ScriptedDriver::~ScriptedDriver() { *alive_ = false; }

script::Result ScriptedDriver::start(const std::string& setup_script) {
  Result r = interp_->eval(setup_script);
  if (r.is_error()) note_error(r);
  return r;
}

void ScriptedDriver::pop(xk::Message msg) {
  ++stats_.received;
  if (receive_script_.empty()) return;
  current_ = &msg;
  Result r = interp_->eval(receive_script_);
  current_ = nullptr;
  if (r.is_error()) note_error(r);
}

void ScriptedDriver::note_error(const script::Result& r) {
  ++stats_.script_errors;
  last_error_ = r.value;
  if (cfg_.trace != nullptr) {
    cfg_.trace->add(sched_.now(), cfg_.node_name, "error", "driver-script",
                    r.value);
  }
}

void ScriptedDriver::install_commands() {
  using Args = std::vector<std::string>;
  auto& in = *interp_;

  in.register_command(
      "drv_send", [this](script::Interp&, const Args& a) -> Result {
        if (a.size() < 3 || (a.size() % 2) != 1) {
          return Result::error("usage: drv_send key value ?key value ...?");
        }
        if (cfg_.stub == nullptr) return Result::error("drv_send: no stub");
        std::map<std::string, std::string> params;
        for (std::size_t i = 1; i + 1 < a.size(); i += 2) {
          params[a[i]] = a[i + 1];
        }
        auto msg = cfg_.stub->generate(params);
        if (!msg) return Result::error("drv_send: stub can't generate");
        ++stats_.generated;
        if (cfg_.trace != nullptr) {
          cfg_.trace->add(sched_.now(), cfg_.node_name, "send",
                          cfg_.stub->type_of(*msg), cfg_.stub->summary(*msg));
        }
        send_down(std::move(*msg));
        return Result::ok();
      });

  in.register_command(
      "drv_send_hex", [this](script::Interp&, const Args& a) -> Result {
        if (a.size() != 2) return Result::error("usage: drv_send_hex bytes");
        auto msg = hex_to_message(a[1]);
        if (!msg) return Result::error("drv_send_hex: bad hex");
        ++stats_.generated;
        send_down(std::move(*msg));
        return Result::ok();
      });

  in.register_command("msg_type", [this](script::Interp&,
                                         const Args&) -> Result {
    if (current_ == nullptr) return Result::error("msg_type: no message");
    if (cfg_.stub == nullptr) return Result::ok("raw");
    return Result::ok(cfg_.stub->type_of(*current_));
  });

  in.register_command(
      "msg_field", [this](script::Interp&, const Args& a) -> Result {
        if (current_ == nullptr) return Result::error("msg_field: no message");
        if (a.size() != 2) return Result::error("usage: msg_field name");
        if (cfg_.stub == nullptr) return Result::error("msg_field: no stub");
        auto v = cfg_.stub->field(*current_, a[1]);
        if (!v) return Result::error("msg_field: no field " + a[1]);
        return Result::ok(std::to_string(*v));
      });

  in.register_command("msg_len", [this](script::Interp&,
                                        const Args&) -> Result {
    if (current_ == nullptr) return Result::error("msg_len: no message");
    return Result::ok(std::to_string(current_->size()));
  });

  in.register_command(
      "msg_log", [this](script::Interp&, const Args& a) -> Result {
        if (current_ == nullptr) return Result::error("msg_log: no message");
        std::string note;
        for (std::size_t i = 1; i < a.size(); ++i) {
          if (a[i] == "cur_msg") continue;
          if (!note.empty()) note += ' ';
          note += a[i];
        }
        if (cfg_.trace != nullptr) {
          std::string detail = cfg_.stub != nullptr
                                   ? cfg_.stub->summary(*current_)
                                   : current_->printable();
          if (!note.empty()) detail += " | " + note;
          cfg_.trace->add(sched_.now(), cfg_.node_name, "recv",
                          cfg_.stub != nullptr
                              ? cfg_.stub->type_of(*current_)
                              : "raw",
                          detail);
        }
        return Result::ok();
      });

  in.register_command(
      "after", [this](script::Interp&, const Args& a) -> Result {
        if (a.size() != 3) return Result::error("usage: after ms script");
        std::int64_t ms = 0;
        auto res =
            std::from_chars(a[1].data(), a[1].data() + a[1].size(), ms);
        if (res.ec != std::errc{} || ms < 0) {
          return Result::error("after: bad delay");
        }
        sched_.schedule(sim::msec(ms), [this, alive = alive_, body = a[2]] {
          if (!*alive) return;
          Result r = interp_->eval(body);
          if (r.is_error()) note_error(r);
        });
        return Result::ok();
      });

  in.register_command("now_ms", [this](script::Interp&, const Args&) {
    return Result::ok(std::to_string(sched_.now() / sim::kMillisecond));
  });

  in.register_command(
      "dst_bernoulli", [this](script::Interp&, const Args& a) -> Result {
        if (a.size() != 2) return Result::error("usage: dst_bernoulli p");
        double p = 0;
        try {
          p = std::stod(a[1]);
        } catch (...) {
          return Result::error("dst_bernoulli: bad p");
        }
        return Result::ok(rng_.bernoulli(p) ? "1" : "0");
      });

  in.register_command(
      "sync_set", [this](script::Interp&, const Args& a) -> Result {
        if (a.size() != 3) return Result::error("usage: sync_set name value");
        if (cfg_.sync == nullptr) return Result::error("sync_set: no bus");
        cfg_.sync->set(a[1], a[2]);
        return Result::ok();
      });

  in.register_command(
      "sync_get", [this](script::Interp&, const Args& a) -> Result {
        if (a.size() != 2 && a.size() != 3) {
          return Result::error("usage: sync_get name ?default?");
        }
        if (cfg_.sync == nullptr) return Result::error("sync_get: no bus");
        auto v = cfg_.sync->get(a[1]);
        if (v) return Result::ok(*v);
        if (a.size() == 3) return Result::ok(a[2]);
        return Result::error("sync_get: no such entry");
      });
}

}  // namespace pfi::core
