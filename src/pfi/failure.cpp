#include "pfi/failure.hpp"

#include <sstream>

namespace pfi::core::failure {

namespace {

std::string drop_after(sim::Duration at) {
  std::ostringstream os;
  os << "if {[now_ms] >= " << at / sim::kMillisecond << "} { xDrop }";
  return os.str();
}

std::string drop_with_probability(double p) {
  std::ostringstream os;
  os << "if {[dst_bernoulli " << p << "]} { xDrop }";
  return os.str();
}

}  // namespace

Scripts process_crash(sim::Duration at) {
  Scripts s;
  s.send = drop_after(at);
  s.receive = drop_after(at);
  return s;
}

Scripts link_crash(sim::Duration at) {
  Scripts s;
  s.send = drop_after(at);
  return s;
}

Scripts send_omission(double p) {
  Scripts s;
  s.send = drop_with_probability(p);
  return s;
}

Scripts receive_omission(double p) {
  Scripts s;
  s.receive = drop_with_probability(p);
  return s;
}

Scripts general_omission(double p) {
  Scripts s;
  s.send = drop_with_probability(p);
  s.receive = drop_with_probability(p);
  return s;
}

Scripts timing_failure(sim::Duration lo, sim::Duration hi) {
  std::ostringstream os;
  os << "xDelay [expr {int([dst_uniform " << lo / sim::kMillisecond << " "
     << hi / sim::kMillisecond << "])}]";
  Scripts s;
  s.send = os.str();
  s.receive = os.str();
  return s;
}

Scripts byzantine_corruption(double p, std::size_t offset) {
  std::ostringstream os;
  os << "if {[dst_bernoulli " << p << "]} { msg_set_byte " << offset
     << " [expr {int([dst_uniform 0 256])}] }";
  Scripts s;
  s.send = os.str();
  return s;
}

Scripts byzantine_duplication(double p, int copies) {
  std::ostringstream os;
  os << "if {[dst_bernoulli " << p << "]} { xDuplicate " << copies << " }";
  Scripts s;
  s.send = os.str();
  return s;
}

Scripts byzantine_reorder(int batch) {
  std::ostringstream os;
  os << "xHold reorder\n"
     << "if {[xHeldCount reorder] >= " << batch
     << "} { xReleaseReversed reorder }";
  Scripts s;
  s.send = os.str();
  return s;
}

}  // namespace pfi::core::failure
