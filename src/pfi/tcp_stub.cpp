#include "pfi/tcp_stub.hpp"

#include <sstream>

#include "net/layers.hpp"
#include "tcp/header.hpp"

namespace pfi::core {

namespace {

constexpr std::size_t kHdrAt = net::IpMeta::kSize;

bool parse(const xk::Message& msg, tcp::TcpHeader& h) {
  return tcp::TcpHeader::peek(msg, kHdrAt, h);
}

std::optional<std::int64_t> parse_int(const std::string& s) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(s, &pos, 0);
    if (pos != s.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

/// Rewrite one big-endian field of `width` bytes at absolute offset `at`.
void poke(xk::Message& msg, std::size_t at, int width, std::int64_t value) {
  for (int i = 0; i < width; ++i) {
    msg.set_byte(at + static_cast<std::size_t>(i),
                 static_cast<std::uint8_t>(value >> (8 * (width - 1 - i))));
  }
}

}  // namespace

std::string TcpStub::type_of(const xk::Message& msg) const {
  tcp::TcpHeader h;
  if (!parse(msg, h)) return "unknown";
  if (h.has(tcp::kRst)) return "tcp-rst";
  if (h.has(tcp::kSyn)) return h.has(tcp::kAck) ? "tcp-synack" : "tcp-syn";
  if (h.has(tcp::kFin)) return "tcp-fin";
  if (h.payload_len > 0) return "tcp-data";
  if (h.has(tcp::kAck)) return "tcp-ack";
  return "unknown";
}

std::string TcpStub::summary(const xk::Message& msg) const {
  tcp::TcpHeader h;
  if (!parse(msg, h)) return "runt tcp segment";
  const net::IpMeta meta = net::IpMeta::peek(msg);
  std::ostringstream os;
  os << h.summary() << " sport=" << h.src_port << " dport=" << h.dst_port
     << " remote=" << net::to_string(meta.remote);
  return os.str();
}

std::optional<std::int64_t> TcpStub::field(const xk::Message& msg,
                                           const std::string& name) const {
  const net::IpMeta meta = net::IpMeta::peek(msg);
  if (name == "remote") return meta.remote;
  if (name == "proto") return static_cast<std::int64_t>(meta.proto);
  tcp::TcpHeader h;
  if (!parse(msg, h)) return std::nullopt;
  if (name == "src_port") return h.src_port;
  if (name == "dst_port") return h.dst_port;
  if (name == "seq") return h.seq;
  if (name == "ack") return h.ack;
  if (name == "flags") return h.flags;
  if (name == "window") return h.window;
  if (name == "len") return h.payload_len;
  if (name == "syn") return h.has(tcp::kSyn) ? 1 : 0;
  if (name == "fin") return h.has(tcp::kFin) ? 1 : 0;
  if (name == "rst") return h.has(tcp::kRst) ? 1 : 0;
  if (name == "ack_flag") return h.has(tcp::kAck) ? 1 : 0;
  return std::nullopt;
}

bool TcpStub::set_field(xk::Message& msg, const std::string& name,
                        std::int64_t value) const {
  tcp::TcpHeader h;
  if (name == "remote") {
    poke(msg, 0, 4, value);
    return true;
  }
  if (!parse(msg, h)) return false;
  if (name == "src_port") {
    poke(msg, kHdrAt + 0, 2, value);
  } else if (name == "dst_port") {
    poke(msg, kHdrAt + 2, 2, value);
  } else if (name == "seq") {
    poke(msg, kHdrAt + 4, 4, value);
  } else if (name == "ack") {
    poke(msg, kHdrAt + 8, 4, value);
  } else if (name == "flags") {
    poke(msg, kHdrAt + 12, 1, value);
  } else if (name == "window") {
    poke(msg, kHdrAt + 13, 2, value);
  } else if (name == "len") {
    poke(msg, kHdrAt + 15, 2, value);
  } else {
    return false;
  }
  return true;
}

std::optional<xk::Message> TcpStub::generate(
    const std::map<std::string, std::string>& params) const {
  tcp::TcpHeader h;
  net::IpMeta meta;
  meta.proto = net::IpProto::kTcp;
  std::string payload;
  for (const auto& [key, value] : params) {
    if (key == "payload") {
      payload = value;
      continue;
    }
    if (key == "flags") {
      if (value == "syn") {
        h.flags = tcp::kSyn;
        continue;
      }
      if (value == "synack") {
        h.flags = tcp::kSyn | tcp::kAck;
        continue;
      }
      if (value == "ack") {
        h.flags = tcp::kAck;
        continue;
      }
      if (value == "rst") {
        h.flags = tcp::kRst | tcp::kAck;
        continue;
      }
      if (value == "fin") {
        h.flags = tcp::kFin | tcp::kAck;
        continue;
      }
    }
    auto v = parse_int(value);
    if (!v) return std::nullopt;
    if (key == "remote") {
      meta.remote = static_cast<std::uint32_t>(*v);
    } else if (key == "src_port") {
      h.src_port = static_cast<std::uint16_t>(*v);
    } else if (key == "dst_port") {
      h.dst_port = static_cast<std::uint16_t>(*v);
    } else if (key == "seq") {
      h.seq = static_cast<std::uint32_t>(*v);
    } else if (key == "ack") {
      h.ack = static_cast<std::uint32_t>(*v);
    } else if (key == "flags") {
      h.flags = static_cast<std::uint8_t>(*v);
    } else if (key == "window") {
      h.window = static_cast<std::uint16_t>(*v);
    } else {
      return std::nullopt;
    }
  }
  h.payload_len = static_cast<std::uint16_t>(payload.size());
  xk::Message msg{payload};
  h.push_onto(msg);
  meta.push_onto(msg);
  return msg;
}

}  // namespace pfi::core
