// Loading filter scripts from .tcl files.
//
// The PFI tool's operational model is "the tool stays compiled; tests are
// script files fed to it". This helper reads a script file and understands
// an optional sectioning convention so one file can carry all three scripts
// a PfiLayer takes:
//
//   #%setup
//   set count 0
//   #%send
//   ...send filter...
//   #%receive
//   ...receive filter...
//
// A file without section markers is a receive filter (the common case in
// the paper's experiments).
#pragma once

#include <optional>
#include <string>

#include "pfi/failure.hpp"

namespace pfi::core {

class PfiLayer;

/// Parsed sections of a script file. The *_line fields give the 1-based
/// file line each section's body starts on, so script errors (and lint
/// diagnostics) can report positions in the original file rather than in
/// the extracted section text.
struct ScriptFile {
  std::string setup;
  std::string send;
  std::string receive;
  int setup_line = 1;
  int send_line = 1;
  int receive_line = 1;
};

/// Split file contents by the #%setup / #%send / #%receive markers.
ScriptFile parse_script_sections(const std::string& contents);

/// Render sections back into the marker file format (the inverse of
/// parse_script_sections, up to a trailing newline per section). Lets
/// generated campaigns (pfi::core::scriptgen, campaign::FaultSchedule) be
/// written out as ordinary .tcl files and re-loaded.
std::string render_script_sections(const ScriptFile& file);

/// Read and parse a script file; nullopt if the file can't be read.
std::optional<ScriptFile> load_script_file(const std::string& path);

/// Convenience: load a file and install its sections on a layer.
/// Returns false if the file can't be read or the setup script errors.
bool install_script_file(PfiLayer& layer, const std::string& path);

}  // namespace pfi::core
