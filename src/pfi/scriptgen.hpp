// Automatic test-script generation from a protocol specification.
//
// The paper's conclusion names this as ongoing work: "(ii) automatic
// generation of test scripts from a protocol specification". Given a small
// declarative spec — the protocol's message types as reported by its
// recognition stub, plus knobs — this module emits a systematic campaign of
// PFI filter scripts: for every message type, a deterministic fault of every
// supported kind (drop / delay / duplicate / corrupt / reorder), optionally
// gated to start only after the Nth occurrence so the protocol can reach a
// steady state first. Each generated script is plain Tcl over the standard
// PFI command set, so campaigns run with zero recompilation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pfi/failure.hpp"
#include "sim/time.hpp"

namespace pfi::core::scriptgen {

/// What the generator needs to know about a protocol: the type names its
/// recognition stub produces, and which of them carry payload worth
/// corrupting.
struct ProtocolSpec {
  std::string name;
  std::vector<std::string> message_types;
};

enum class FaultKind {
  kDrop,
  kDelay,
  kDuplicate,
  kCorrupt,
  kReorder,
};

std::string to_string(FaultKind k);

struct Options {
  /// Let this many messages of the target type through before faulting
  /// (0 = fault from the first occurrence).
  int warmup_occurrences = 0;
  /// Fault at most this many occurrences, then stand down (0 = forever).
  int max_faults = 0;
  sim::Duration delay = sim::msec(1000);  // for kDelay
  int duplicate_copies = 1;               // for kDuplicate
  std::size_t corrupt_offset = 0;         // for kCorrupt
  int reorder_batch = 3;                  // for kReorder
  /// Install on the send side (true) or the receive side (false).
  bool on_send_side = true;
};

/// One generated test case.
struct GeneratedTest {
  std::string name;         // "<proto>/<type>/<fault>"
  std::string description;  // human-readable intent
  std::string target_type;
  FaultKind kind = FaultKind::kDrop;
  failure::Scripts scripts;  // ready to install on a PfiLayer
};

/// One script faulting exactly one message type with one fault kind.
GeneratedTest generate(const ProtocolSpec& spec, const std::string& type,
                       FaultKind kind, const Options& opts = {});

/// The full cross product: every message type x every fault kind.
std::vector<GeneratedTest> generate_campaign(const ProtocolSpec& spec,
                                             const Options& opts = {});

/// Types x the subset of fault kinds given.
std::vector<GeneratedTest> generate_campaign(
    const ProtocolSpec& spec, const std::vector<FaultKind>& kinds,
    const Options& opts = {});

/// A time-bounded fault window: the conformance compiler's unit. The fault
/// fires only while simulated time is in [start, end) — guards are emitted
/// over `now_ms`, so the boundary granularity is one millisecond — and,
/// when `after`/`count` gate it, only for in-window match occurrences
/// `after+1 .. after+count`. A window whose start is at or past the run's
/// end never fires (lint: dead-timeline).
struct Window {
  /// Names the window's occurrence counter (cf_<tag>) and hold queue
  /// (cfq_<tag>); must be a valid Tcl identifier, unique per script.
  std::string tag = "w0";
  std::string type = "*";  // message type, "*" = every message
  FaultKind kind = FaultKind::kDrop;
  sim::Duration start = 0;
  sim::Duration end = -1;  // exclusive; < 0 = to end of run
  int after = 0;           // let N in-window matches through first
  int count = 0;           // fault at most N matches (0 = every one)
  /// Fault parameters + side. warmup_occurrences/max_faults are ignored —
  /// `after`/`count` above are the windowed equivalents.
  Options opts;
};

/// The filter-script fragment implementing one window (guards + counter +
/// trace_note attribution + action; no setup). Concatenation-safe: each
/// fragment is self-contained and ends with a newline.
std::string window_fragment(const Window& w);

/// Compile a window list to installable scripts: per-window counters in
/// setup, fragments concatenated per side in input order. Emitted scripts
/// are `pfi_lint --strict`-clean (counters only when read, no unused vars).
failure::Scripts generate_windows(const std::vector<Window>& windows);

}  // namespace pfi::core::scriptgen
