// Automatic test-script generation from a protocol specification.
//
// The paper's conclusion names this as ongoing work: "(ii) automatic
// generation of test scripts from a protocol specification". Given a small
// declarative spec — the protocol's message types as reported by its
// recognition stub, plus knobs — this module emits a systematic campaign of
// PFI filter scripts: for every message type, a deterministic fault of every
// supported kind (drop / delay / duplicate / corrupt / reorder), optionally
// gated to start only after the Nth occurrence so the protocol can reach a
// steady state first. Each generated script is plain Tcl over the standard
// PFI command set, so campaigns run with zero recompilation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pfi/failure.hpp"
#include "sim/time.hpp"

namespace pfi::core::scriptgen {

/// What the generator needs to know about a protocol: the type names its
/// recognition stub produces, and which of them carry payload worth
/// corrupting.
struct ProtocolSpec {
  std::string name;
  std::vector<std::string> message_types;
};

enum class FaultKind {
  kDrop,
  kDelay,
  kDuplicate,
  kCorrupt,
  kReorder,
};

std::string to_string(FaultKind k);

struct Options {
  /// Let this many messages of the target type through before faulting
  /// (0 = fault from the first occurrence).
  int warmup_occurrences = 0;
  /// Fault at most this many occurrences, then stand down (0 = forever).
  int max_faults = 0;
  sim::Duration delay = sim::msec(1000);  // for kDelay
  int duplicate_copies = 1;               // for kDuplicate
  std::size_t corrupt_offset = 0;         // for kCorrupt
  int reorder_batch = 3;                  // for kReorder
  /// Install on the send side (true) or the receive side (false).
  bool on_send_side = true;
};

/// One generated test case.
struct GeneratedTest {
  std::string name;         // "<proto>/<type>/<fault>"
  std::string description;  // human-readable intent
  std::string target_type;
  FaultKind kind = FaultKind::kDrop;
  failure::Scripts scripts;  // ready to install on a PfiLayer
};

/// One script faulting exactly one message type with one fault kind.
GeneratedTest generate(const ProtocolSpec& spec, const std::string& type,
                       FaultKind kind, const Options& opts = {});

/// The full cross product: every message type x every fault kind.
std::vector<GeneratedTest> generate_campaign(const ProtocolSpec& spec,
                                             const Options& opts = {});

/// Types x the subset of fault kinds given.
std::vector<GeneratedTest> generate_campaign(
    const ProtocolSpec& spec, const std::vector<FaultKind>& kinds,
    const Options& opts = {});

}  // namespace pfi::core::scriptgen
