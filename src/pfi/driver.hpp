// Driver layer (paper §2.1, Figure 1(a)).
//
// The driver sits ABOVE the target protocol and generates protocol-valid
// traffic "so that data structures in the target protocol will be updated
// correctly" — the stateful half of message generation that the PFI layer
// (which sits below and has no access to the target's state) cannot do.
// TcpDriver feeds a TcpConnection a paced byte stream and controls the
// receive-buffer drain, which is how the paper's experiments created a full
// window ("the driver layer ... did not reset the receive buffer space
// inside the TCP layer").
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/scheduler.hpp"
#include "tcp/connection.hpp"

namespace pfi::core {

class TcpDriver {
 public:
  TcpDriver(sim::Scheduler& sched, tcp::TcpConnection& conn)
      : sched_(sched), conn_(&conn), timer_(sched) {}

  /// Send `chunk` bytes every `interval`, `count` times (0 = forever).
  /// Starts immediately if the connection is established, otherwise on
  /// establishment.
  void start(sim::Duration interval, std::size_t chunk, std::size_t count);

  /// Stop generating.
  void stop() { timer_.cancel(); }

  /// Stop consuming received data so the receive buffer fills and the
  /// advertised window closes (zero-window experiment).
  void stop_draining() { conn_->set_auto_drain(false); }
  void resume_draining() {
    conn_->set_auto_drain(true);
    conn_->read();
  }

  [[nodiscard]] std::size_t chunks_sent() const { return sent_; }

  /// Called after each chunk is queued.
  std::function<void(std::size_t)> on_chunk;

 private:
  void tick();

  sim::Scheduler& sched_;
  tcp::TcpConnection* conn_;
  sim::Timer timer_;
  sim::Duration interval_ = 0;
  std::size_t chunk_ = 0;
  std::size_t count_ = 0;
  std::size_t sent_ = 0;
};

}  // namespace pfi::core
