// Packet recognition/generation stubs (paper Figure 1(b) / Figure 2).
//
// The PFI layer itself is protocol-agnostic; everything it knows about a
// target protocol's wire format comes from a stub "written by people who
// know the packet formats of the target protocol". A stub names a message's
// type, exposes header fields to scripts, rewrites fields (message
// corruption / redirection faults), and generates new messages of a given
// type (probing). TcpStub and GmpStub are the system-supplied stubs for the
// two protocols the paper studies; ToyStub serves examples and tests.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "xk/message.hpp"

namespace pfi::core {

class PacketStub {
 public:
  virtual ~PacketStub() = default;

  /// Short type name ("tcp-data", "gmp-commit", ...); "unknown" if the stub
  /// cannot parse the message.
  [[nodiscard]] virtual std::string type_of(const xk::Message& msg) const = 0;

  /// Human-readable header summary for logging.
  [[nodiscard]] virtual std::string summary(const xk::Message& msg) const = 0;

  /// Read a named header field; nullopt if absent/unparseable.
  [[nodiscard]] virtual std::optional<std::int64_t> field(
      const xk::Message& msg, const std::string& name) const = 0;

  /// Rewrite a named header field in place. Returns false if unsupported.
  virtual bool set_field(xk::Message& msg, const std::string& name,
                         std::int64_t value) const = 0;

  /// Build a new message from key/value parameters (the generation stub).
  /// Returns nullopt for unsupported parameter sets.
  [[nodiscard]] virtual std::optional<xk::Message> generate(
      const std::map<std::string, std::string>& params) const = 0;
};

/// Minimal demo protocol used by examples and unit tests. Wire format:
///   type u8 | id u32 | payload...
/// with types mirroring the script example in paper §3 (ACK/NACK/GACK) plus
/// DATA.
class ToyStub : public PacketStub {
 public:
  static constexpr std::uint8_t kAck = 0x1;
  static constexpr std::uint8_t kNack = 0x2;
  static constexpr std::uint8_t kGack = 0x4;
  static constexpr std::uint8_t kData = 0x8;

  [[nodiscard]] std::string type_of(const xk::Message& msg) const override;
  [[nodiscard]] std::string summary(const xk::Message& msg) const override;
  [[nodiscard]] std::optional<std::int64_t> field(
      const xk::Message& msg, const std::string& name) const override;
  bool set_field(xk::Message& msg, const std::string& name,
                 std::int64_t value) const override;
  [[nodiscard]] std::optional<xk::Message> generate(
      const std::map<std::string, std::string>& params) const override;

  /// Convenience builder for tests.
  static xk::Message make(std::uint8_t type, std::uint32_t id,
                          std::string_view payload = {});
};

}  // namespace pfi::core
