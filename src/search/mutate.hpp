// Structured mutation operators over FaultSchedules.
//
// An AFL-style fuzzer mutates byte buffers; here the genome is already
// structured — a list of FaultEvents — so the operators are semantic:
// add/remove/retarget an event, shift its occurrence or reorder window,
// flip its fault kind, splice two schedules, or stack several of those
// (havoc). Every operator is a pure function of (parent, splice partner,
// pools, PRNG state), so a search run replays exactly from its seed.
//
// Mutants are *candidates*: the engine pre-screens each one with
// lint::check_schedule and skips statically-invalid or no-op schedules
// before they cost a simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/schedule.hpp"
#include "search/prng.hpp"

namespace pfi::search {

enum class MutOp {
  kAdd,       // insert a fresh random event
  kRemove,    // delete one event
  kRetarget,  // re-aim one event at another message type
  kShift,     // move an event's occurrence (and reorder batch) around
  kFlipKind,  // change the fault kind, re-drawing kind parameters
  kSplice,    // prefix of parent + suffix of another corpus schedule
  kHavoc,     // 2..5 of the above, stacked
};

const char* to_string(MutOp op);

/// Parameter pools the operators draw from. `types` must be non-empty;
/// `kinds` defaults to all five fault kinds when left empty.
struct MutationPools {
  std::vector<std::string> types;
  std::vector<core::scriptgen::FaultKind> kinds;
  int max_occurrence = 12;  // occurrences are drawn from [1, max_occurrence]
  int max_events = 16;      // kAdd refuses to grow a schedule past this
};

/// Pools for a campaign spec: the spec's own types first, then every type
/// the protocol's stub recognises (deterministic order, deduped, wildcard
/// excluded — a "*" event shadows per-type counters without adding
/// coverage the per-type pool can't reach).
MutationPools pools_for(const std::vector<std::string>& spec_types,
                        const std::string& protocol);

/// One fresh random event drawn entirely from `pools` + `rng`.
campaign::FaultEvent random_event(const MutationPools& pools, SplitMix64& rng);

/// Pick an operator appropriate for the parent (no kRemove on a 0/1-event
/// schedule, no kSplice without a partner, no structure ops on an empty
/// schedule).
MutOp pick_op(SplitMix64& rng, std::size_t parent_events, bool can_splice);

/// Apply `op` to `parent`. `partner` is only read by kSplice (and by kHavoc
/// when it stacks a splice); it may be null, which degrades splice to add.
campaign::FaultSchedule mutate(const campaign::FaultSchedule& parent,
                               const campaign::FaultSchedule* partner,
                               const MutationPools& pools, SplitMix64& rng,
                               MutOp op);

}  // namespace pfi::search
