#include "search/search.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "campaign/executor.hpp"
#include "campaign/journal.hpp"
#include "campaign/json.hpp"
#include "campaign/runner.hpp"
#include "lint/canonical.hpp"
#include "lint/lint.hpp"
#include "obs/coverage.hpp"
#include "search/jsonv.hpp"
#include "search/mutate.hpp"
#include "search/prng.hpp"

namespace pfi::search {

using campaign::FaultSchedule;
using campaign::RunCell;
using campaign::RunResult;

namespace {

/// One mutant queued for a generation: everything known before execution.
struct Candidate {
  FaultSchedule schedule;
  std::string key;  // campaign::cell_key of its cell (content hash)
  std::string op = "seed";
  int parent = -1;
  /// lint::canonical_key, kept while this schedule may become the
  /// representative for its equivalence class (pruning enabled, no
  /// representative with a record yet).
  std::string canon;
  /// Provably equivalent to an already-recorded schedule: answer from
  /// `rep_key`'s record instead of simulating. The record is never
  /// re-journaled under this candidate's own key.
  bool equivalent = false;
  std::string rep_key;
};

RunCell template_cell(const campaign::CampaignSpec& spec) {
  RunCell c;
  c.protocol = spec.protocol;
  c.oracle = spec.oracle;
  c.vendor = spec.protocol == "tcp"
                 ? (spec.vendors.empty() ? "sunos" : spec.vendors.front())
                 : "";
  c.seed = spec.seeds.empty() ? 1 : spec.seeds.front();
  c.nodes = spec.nodes;
  c.target_node = spec.target_node;
  c.warmup = spec.warmup;
  c.duration = spec.duration;
  c.jitter = spec.jitter;
  c.buggy = spec.buggy;
  c.timeout_ms = spec.timeout_ms;
  c.max_sim_events = spec.max_sim_events;
  return c;
}

RunCell cell_for(const RunCell& tmpl, const FaultSchedule& schedule,
                 int index, const std::string& key) {
  RunCell c = tmpl;
  c.schedule = schedule;
  c.index = index;
  c.id = "search/" + key.substr(0, 12);
  return c;
}

/// Reconstruct a Coverage from a journaled record's "coverage" object.
/// Structural parse of our own writer's output; empty Coverage when the
/// record carries none (timeout/error skeletons).
obs::Coverage coverage_from_record(const std::string& record) {
  obs::Coverage cov;
  const auto doc = jsonv::parse(record);
  if (!doc) return cov;
  const jsonv::Value* c = doc->find("coverage");
  if (c == nullptr || c->kind != jsonv::Value::Kind::kObject) return cov;
  cov.digest = c->str_or("digest", "");
  if (const auto* types = c->find("msg_types")) {
    for (const auto& [k, v] : types->fields) {
      cov.msg_types.emplace_back(k, static_cast<std::uint64_t>(v.number));
    }
  }
  if (const auto* actions = c->find("actions")) {
    for (const auto& [k, v] : actions->fields) {
      cov.actions.emplace_back(k, static_cast<std::uint64_t>(v.number));
    }
  }
  if (const auto* trans = c->find("transitions")) {
    for (const jsonv::Value& t : trans->items) {
      if (t.kind == jsonv::Value::Kind::kString) {
        cov.transitions.push_back(t.text);
      }
    }
  }
  return cov;
}

/// What admission and violation handling need from a run, whether it came
/// from a fresh execution or a journaled record.
struct Outcome {
  bool errored = false;
  bool pass = true;
  std::string reason;
  obs::Coverage coverage;
};

Outcome outcome_from_record(const std::string& record) {
  Outcome o;
  const std::string verdict =
      campaign::json::probe_string_field(record, "verdict").value_or("error");
  o.errored = verdict == "error";
  o.pass = verdict == "pass";
  o.reason = campaign::json::probe_string_field(record, "reason").value_or("");
  o.coverage = coverage_from_record(record);
  return o;
}

Outcome outcome_from_result(const RunResult& r) {
  Outcome o;
  o.errored = r.errored();
  o.pass = r.pass;
  o.reason = r.reason;
  o.coverage = r.coverage;
  return o;
}

}  // namespace

SearchResult explore(const campaign::CampaignSpec& spec,
                     const SearchOptions& opts) {
  SearchResult res;
  if (!spec.script_files.empty()) {
    res.error = "search requires a schedule-mode spec (types x faults), "
                "not literal script files";
    return res;
  }
  if (spec.types.empty()) {
    res.error = "search needs at least one message type in the spec";
    return res;
  }

  const RunCell tmpl = template_cell(spec);
  const MutationPools pools = pools_for(spec.types, spec.protocol);
  SplitMix64 rng(opts.seed != 0 ? opts.seed : tmpl.seed);

  // --- resumed corpus -------------------------------------------------------
  if (!opts.corpus_in.empty()) {
    std::ifstream in(opts.corpus_in);
    if (!in) {
      res.error = "cannot read corpus " + opts.corpus_in;
      return res;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string cerr_;
    if (!res.corpus.load_jsonl(text.str(), &cerr_)) {
      res.error = cerr_;
      return res;
    }
  }

  // --- journal cache --------------------------------------------------------
  std::map<std::string, std::string> records;  // key -> record_json
  campaign::Journal journal;
  if (!opts.journal_path.empty()) {
    records = campaign::load_journal(opts.journal_path);
    if (!journal.open(opts.journal_path)) {
      res.error = "cannot append to journal " + opts.journal_path;
      return res;
    }
  }

  auto stopped = [&] { return opts.should_stop && opts.should_stop(); };
  auto progress = [&](const std::string& line) {
    if (opts.on_progress) opts.on_progress(line);
  };

  // --- candidate bookkeeping ------------------------------------------------
  std::set<std::string> tried;  // cell keys ever queued (dedup)
  // canonical_key -> first cell key executed (or journal-answered) for that
  // equivalence class. Later mutants in the class reuse its record.
  std::map<std::string, std::string> canon_rep;
  // Budget charge: real simulations plus equivalence skips. With pruning
  // off the two runs draw identical mutants and admit identical corpora;
  // pruning only converts some charges from simulations into skips.
  auto spent = [&res] { return res.executed + res.equiv_skipped; };
  // Resumed entries keep their stored digest/features; marking their
  // schedules as tried points the engine at new ground instead.
  for (const CorpusEntry& e : res.corpus.entries()) {
    tried.insert(campaign::cell_key(cell_for(tmpl, e.schedule, 0, "in")));
  }
  int generation = 0;

  auto note_curve = [&] {
    const int digests = static_cast<int>(res.corpus.size());
    if (res.curve.empty() || res.curve.back().digests != digests) {
      res.curve.push_back({spent(), digests});
    }
  };

  /// Admit/record one finished candidate. Returns the corpus index or -1.
  auto process = [&](const Candidate& cand, const Outcome& o) {
    if (o.errored) {
      ++res.errors;
      return -1;
    }
    if (!o.pass) {
      // Oracle violation: keep the first mutant per digest.
      const bool seen = std::any_of(
          res.violations.begin(), res.violations.end(),
          [&](const SearchViolation& v) { return v.digest == o.coverage.digest; });
      if (!seen) {
        SearchViolation v;
        v.id = "search/" + cand.key.substr(0, 12);
        v.digest = o.coverage.digest;
        v.reason = o.reason;
        v.schedule = cand.schedule;
        v.minimized = cand.schedule;
        res.violations.push_back(std::move(v));
      }
    }
    if (o.coverage.empty()) return -1;
    for (const std::string& t : o.coverage.transitions) {
      res.transitions.insert(t);
    }
    if (res.corpus.has_digest(o.coverage.digest)) return -1;
    CorpusEntry e;
    e.schedule = cand.schedule;
    e.digest = o.coverage.digest;
    e.features = obs::coverage_features(o.coverage);
    e.iteration = spent();
    e.parent = cand.parent;
    e.op = cand.op;
    const int idx = res.corpus.admit(std::move(e));
    note_curve();
    return idx;
  };

  /// Execute one generation of deduped candidates: journal hits are
  /// answered from the cache, the rest go through the campaign executor,
  /// and everything is processed in slot order afterwards.
  auto run_generation = [&](const std::vector<Candidate>& gen) {
    std::vector<const Candidate*> fresh;
    std::vector<RunCell> cells;
    for (const Candidate& cand : gen) {
      if (records.count(cand.key) != 0) continue;
      if (cand.equivalent) continue;  // answered from rep_key's record
      cells.push_back(cell_for(tmpl, cand.schedule,
                               static_cast<int>(cells.size()), cand.key));
      fresh.push_back(&cand);
    }
    std::vector<RunResult> results;
    if (!cells.empty()) {
      campaign::ExecutorOptions eopts;
      eopts.jobs = opts.jobs;
      eopts.isolate = opts.isolate;
      eopts.retries = opts.retries;
      eopts.should_stop = opts.should_stop;
      results = opts.run_batch ? opts.run_batch(cells, eopts)
                               : campaign::run_cells(cells, eopts);
    }
    // Fresh records land in the cache (and journal) before processing, so
    // the minimizer later probes through them too.
    std::map<std::string, const RunResult*> fresh_by_key;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (results[i].index < 0) continue;  // interrupted before claimed
      const std::string& key = fresh[static_cast<std::size_t>(results[i].index)]
                                   ->key;
      // run_cells returns results[i] == cells[i]; index is the batch slot.
      const std::string record = campaign::record_json(results[i]);
      records[key] = record;
      if (journal.is_open()) journal.append(key, record);
      fresh_by_key[key] = &results[i];
      ++res.executed;
    }
    // Charge all equivalence skips before processing (mirroring the
    // executed count above), so admitted corpus entries carry the same
    // iteration stamp a non-pruning run would give them.
    for (const Candidate& cand : gen) {
      if (cand.equivalent) ++res.equiv_skipped;
    }
    for (const Candidate& cand : gen) {
      const auto fresh_it = fresh_by_key.find(cand.key);
      if (fresh_it != fresh_by_key.end()) {
        if (!cand.canon.empty()) canon_rep.try_emplace(cand.canon, cand.key);
        process(cand, outcome_from_result(*fresh_it->second));
        continue;
      }
      if (cand.equivalent) {
        const auto rep_it = records.find(cand.rep_key);
        if (rep_it != records.end()) {
          process(cand, outcome_from_record(rep_it->second));
        }
        continue;
      }
      const auto rec_it = records.find(cand.key);
      if (rec_it == records.end()) continue;  // skipped by interruption
      // Journaled before this generation ran: a free cache hit. (Keys the
      // generation itself just executed were handled above.)
      if (!cand.canon.empty()) canon_rep.try_emplace(cand.canon, cand.key);
      process(cand, outcome_from_record(rec_it->second));
    }
  };

  /// Annotate a deduped candidate with its equivalence-class fate: either
  /// it may become the class representative (keep its canonical key) or a
  /// recorded representative already exists (answer from that record).
  auto annotate_equivalence = [&](Candidate* cand) {
    // The canonical key is computed (and the class representative
    // registered) even with pruning off, so the minimizer's probe cache
    // resolves equivalences identically in both modes — a requirement for
    // the byte-identical-report guarantee.
    cand->canon = lint::canonical_key(cand->schedule, spec.protocol);
    if (!opts.prune_equivalent) return;
    if (records.count(cand->key) != 0) return;  // own journal record wins
    const auto rep = canon_rep.find(cand->canon);
    if (rep != canon_rep.end() && records.count(rep->second) != 0) {
      cand->equivalent = true;
      cand->rep_key = rep->second;
      cand->canon.clear();
    }
  };

  // --- seed corpus: baseline + the planner's deduped schedules -------------
  {
    std::vector<Candidate> seeds;
    auto queue_seed = [&](FaultSchedule s) {
      Candidate cand;
      cand.key = campaign::cell_key(cell_for(tmpl, s, 0, "seed"));
      if (!tried.insert(cand.key).second) return;
      cand.schedule = std::move(s);
      annotate_equivalence(&cand);
      if (records.count(cand.key) != 0) ++res.journal_hits;
      seeds.push_back(std::move(cand));
    };
    queue_seed(FaultSchedule{});  // the unfaulted baseline digest
    for (const RunCell& c : campaign::plan(spec)) {
      if (static_cast<int>(seeds.size()) >= std::max(1, opts.budget)) break;
      if (!c.schedule.empty()) queue_seed(c.schedule);
    }
    res.seeded = static_cast<int>(seeds.size());
    run_generation(seeds);
    progress("seeded " + std::to_string(res.seeded) + " schedule(s), " +
             std::to_string(res.corpus.size()) + " digest(s)");
  }

  // --- the feedback loop ----------------------------------------------------
  while (spent() < opts.budget && !stopped()) {
    if (res.corpus.empty()) {
      res.error = "corpus is empty (every seed run errored); nothing to mutate";
      break;
    }
    ++generation;
    std::vector<Candidate> gen;
    const int want = std::min(opts.batch, opts.budget - spent());
    for (int slot = 0; slot < want; ++slot) {
      for (int attempt = 0; attempt < std::max(1, opts.mutation_tries);
           ++attempt) {
        const std::size_t parent = res.corpus.pick_weighted(rng);
        const CorpusEntry& pe = res.corpus.entries()[parent];
        const bool can_splice = res.corpus.size() >= 2;
        const MutOp op = pick_op(rng, pe.schedule.size(), can_splice);
        const FaultSchedule* partner = nullptr;
        if (op == MutOp::kSplice) {
          const std::size_t pi = res.corpus.pick_weighted(rng);
          partner = &res.corpus.entries()[pi].schedule;
        }
        FaultSchedule mutant = mutate(pe.schedule, partner, pools, rng, op);
        const auto diags =
            lint::check_schedule(mutant, spec.protocol, "search");
        if (lint::has_errors(diags)) {
          ++res.lint_skipped;
          continue;
        }
        Candidate cand;
        cand.key = campaign::cell_key(cell_for(tmpl, mutant, 0, "m"));
        if (!tried.insert(cand.key).second) {
          ++res.duplicates;
          continue;
        }
        cand.schedule = std::move(mutant);
        cand.op = to_string(op);
        cand.parent = static_cast<int>(parent);
        annotate_equivalence(&cand);
        if (records.count(cand.key) != 0) ++res.journal_hits;
        gen.push_back(std::move(cand));
        break;
      }
    }
    if (gen.empty()) {
      // The mutator is dry (tiny pools + everything tried); stop early
      // rather than spinning the PRNG forever.
      break;
    }
    run_generation(gen);
    progress("gen " + std::to_string(generation) + ": executed " +
             std::to_string(res.executed) + "/" + std::to_string(opts.budget) +
             " (+" + std::to_string(res.equiv_skipped) + " equiv-skipped)" +
             ", corpus " + std::to_string(res.corpus.size()) + ", violations " +
             std::to_string(res.violations.size()));
  }
  res.interrupted = stopped();

  // --- minimize discovered violations through the record cache -------------
  const int to_minimize =
      std::min<int>(opts.max_minimize, static_cast<int>(res.violations.size()));
  for (int i = 0; i < to_minimize && !res.interrupted; ++i) {
    SearchViolation& v = res.violations[static_cast<std::size_t>(i)];
    if (v.schedule.empty()) continue;
    progress("minimizing " + v.id + " (" + std::to_string(v.schedule.size()) +
             " events)");
    campaign::MinimizeOptions mo;
    mo.max_runs = opts.minimize_max_runs;
    mo.cache = &records;
    mo.journal = journal.is_open() ? &journal : nullptr;
    // Probes resolve through the search's equivalence classes, so a subset
    // whose canonical twin was executed answers from that record. Active in
    // both pruning modes: annotate_equivalence registers representatives
    // unconditionally, which keeps probe counters byte-identical.
    mo.equivalent_key = [&](const campaign::RunCell& c) {
      const auto rep =
          canon_rep.find(lint::canonical_key(c.schedule, spec.protocol));
      return rep != canon_rep.end() ? rep->second : std::string();
    };
    const campaign::MinimizeResult m =
        campaign::minimize_schedule(cell_for(tmpl, v.schedule, 0, v.id), mo);
    v.minimize_attempted = true;
    v.minimized = m.schedule;
    v.reproduced = m.reproduced;
    v.probe_runs = m.runs;
    v.probe_cache_hits = m.cache_hits;
    res.minimize_runs += m.runs;
  }
  journal.close();
  return res;
}

std::string report_json(const campaign::CampaignSpec& spec,
                        const SearchOptions& opts, const SearchResult& res) {
  campaign::json::Writer w;
  w.begin_object();
  w.kv("search", spec.name);
  w.kv("protocol", spec.protocol);
  w.kv("oracle", spec.oracle);
  w.kv("seed", opts.seed != 0
                   ? opts.seed
                   : (spec.seeds.empty() ? 1 : spec.seeds.front()));
  w.kv("budget", opts.budget);
  w.kv("batch", opts.batch);
  w.kv("seeded", res.seeded);
  w.kv("executed", res.executed);
  w.kv("equiv_skipped", res.equiv_skipped);
  w.kv("journal_hits", res.journal_hits);
  w.kv("duplicates", res.duplicates);
  w.kv("lint_skipped", res.lint_skipped);
  w.kv("errors", res.errors);
  w.kv("unique_digests", static_cast<int>(res.corpus.size()));
  w.kv("transitions", static_cast<int>(res.transitions.size()));
  w.kv("minimize_runs", res.minimize_runs);
  if (res.interrupted) w.kv("interrupted", true);
  if (!res.error.empty()) w.kv("error", res.error);
  w.key("curve").begin_array();
  for (const CurvePoint& p : res.curve) {
    w.begin_object();
    w.kv("executed", p.executed);
    w.kv("digests", p.digests);
    w.end_object();
  }
  w.end_array();
  w.key("violations").begin_array();
  for (const SearchViolation& v : res.violations) {
    w.begin_object();
    w.kv("id", v.id);
    w.kv("digest", v.digest);
    w.kv("reason", v.reason);
    w.kv("events", static_cast<int>(v.schedule.size()));
    w.key("schedule");
    v.schedule.to_json(w);
    if (v.minimize_attempted) {
      w.kv("minimal_events", static_cast<int>(v.minimized.size()));
      w.kv("reproduced", v.reproduced);
      w.kv("probe_runs", v.probe_runs);
      w.kv("probe_cache_hits", v.probe_cache_hits);
      w.kv("minimized_summary", v.minimized.summary());
      w.key("minimized");
      v.minimized.to_json(w);
    }
    w.end_object();
  }
  w.end_array();
  w.key("corpus").begin_array();
  for (const CorpusEntry& e : res.corpus.entries()) {
    w.begin_object();
    w.kv("digest", e.digest);
    w.kv("iter", e.iteration);
    w.kv("parent", e.parent);
    w.kv("op", e.op);
    w.kv("events", static_cast<int>(e.schedule.size()));
    w.kv("summary", e.schedule.summary());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace pfi::search
