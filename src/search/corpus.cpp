#include "search/corpus.hpp"

#include <algorithm>

#include "campaign/json.hpp"
#include "search/jsonv.hpp"

namespace pfi::search {

using campaign::FaultEvent;
using campaign::FaultSchedule;
using core::scriptgen::FaultKind;

namespace {

/// Fixed-point rarity scale: weight(feature) = kScale / count(feature).
constexpr std::uint64_t kScale = 1u << 16;

bool kind_from_string(const std::string& s, FaultKind* out) {
  if (s == "drop") *out = FaultKind::kDrop;
  else if (s == "delay") *out = FaultKind::kDelay;
  else if (s == "duplicate") *out = FaultKind::kDuplicate;
  else if (s == "corrupt") *out = FaultKind::kCorrupt;
  else if (s == "reorder") *out = FaultKind::kReorder;
  else return false;
  return true;
}

std::optional<FaultSchedule> schedule_from_value(const jsonv::Value& arr,
                                                 std::string* err) {
  if (arr.kind != jsonv::Value::Kind::kArray) {
    if (err != nullptr) *err = "schedule is not a JSON array";
    return std::nullopt;
  }
  FaultSchedule s;
  for (const jsonv::Value& ev : arr.items) {
    if (ev.kind != jsonv::Value::Kind::kObject) {
      if (err != nullptr) *err = "schedule event is not an object";
      return std::nullopt;
    }
    FaultEvent e;
    e.type = ev.str_or("type", "");
    if (e.type.empty() || !kind_from_string(ev.str_or("fault", ""), &e.kind)) {
      if (err != nullptr) *err = "schedule event has a bad type/fault field";
      return std::nullopt;
    }
    e.occurrence = static_cast<int>(ev.int_or("occurrence", 1));
    e.on_send = ev.str_or("side", "send") == "send";
    if (const auto* d = ev.find("delay_ms")) {
      e.delay = sim::msec(static_cast<std::int64_t>(d->number));
    }
    e.copies = static_cast<int>(ev.int_or("copies", e.copies));
    e.corrupt_offset =
        static_cast<std::size_t>(ev.int_or("offset", 0));
    e.batch = static_cast<int>(ev.int_or("batch", e.batch));
    s.events.push_back(std::move(e));
  }
  return s;
}

}  // namespace

std::optional<FaultSchedule> schedule_from_json(const std::string& array_json,
                                                std::string* err) {
  const auto v = jsonv::parse(array_json);
  if (!v) {
    if (err != nullptr) *err = "malformed schedule JSON";
    return std::nullopt;
  }
  return schedule_from_value(*v, err);
}

int Corpus::admit(CorpusEntry entry) {
  if (digests_.count(entry.digest) != 0) return -1;
  const int index = static_cast<int>(entries_.size());
  digests_[entry.digest] = index;
  for (const std::string& f : entry.features) ++feature_count_[f];
  entries_.push_back(std::move(entry));
  return index;
}

std::size_t Corpus::pick_weighted(SplitMix64& rng) const {
  std::uint64_t total = 0;
  std::vector<std::uint64_t> weights;
  weights.reserve(entries_.size());
  for (const CorpusEntry& e : entries_) {
    std::uint64_t w = 1;  // floor so featureless entries stay reachable
    for (const std::string& f : e.features) {
      const auto it = feature_count_.find(f);
      const std::uint32_t n = it == feature_count_.end() ? 1 : it->second;
      w += kScale / std::max<std::uint32_t>(n, 1);
    }
    weights.push_back(w);
    total += w;
  }
  std::uint64_t r = rng.below(total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (r < weights[i]) return i;
    r -= weights[i];
  }
  return entries_.size() - 1;  // unreachable for total > 0
}

std::string Corpus::to_jsonl() const {
  std::string out;
  for (const CorpusEntry& e : entries_) {
    campaign::json::Writer w;
    w.begin_object();
    w.kv("digest", e.digest);
    w.kv("iter", e.iteration);
    w.kv("parent", e.parent);
    w.kv("op", e.op);
    w.key("features").begin_array();
    for (const std::string& f : e.features) w.value(f);
    w.end_array();
    w.key("schedule");
    e.schedule.to_json(w);
    w.end_object();
    out += w.str();
    out += '\n';
  }
  return out;
}

bool Corpus::load_jsonl(const std::string& text, std::string* err) {
  std::size_t at = 0;
  int lineno = 0;
  while (at < text.size()) {
    std::size_t end = text.find('\n', at);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(at, end - at);
    at = end + 1;
    ++lineno;
    if (line.empty()) continue;
    const auto v = jsonv::parse(line);
    if (!v || v->kind != jsonv::Value::Kind::kObject) {
      if (err != nullptr) {
        *err = "corpus line " + std::to_string(lineno) + ": malformed JSON";
      }
      return false;
    }
    CorpusEntry e;
    e.digest = v->str_or("digest", "");
    if (e.digest.empty()) {
      if (err != nullptr) {
        *err = "corpus line " + std::to_string(lineno) + ": missing digest";
      }
      return false;
    }
    e.iteration = static_cast<int>(v->int_or("iter", 0));
    e.parent = static_cast<int>(v->int_or("parent", -1));
    e.op = v->str_or("op", "seed");
    if (const auto* feats = v->find("features")) {
      for (const jsonv::Value& f : feats->items) {
        if (f.kind == jsonv::Value::Kind::kString) e.features.push_back(f.text);
      }
    }
    const auto* sched = v->find("schedule");
    if (sched == nullptr) {
      if (err != nullptr) {
        *err = "corpus line " + std::to_string(lineno) + ": missing schedule";
      }
      return false;
    }
    std::string serr;
    auto s = schedule_from_value(*sched, &serr);
    if (!s) {
      if (err != nullptr) {
        *err = "corpus line " + std::to_string(lineno) + ": " + serr;
      }
      return false;
    }
    e.schedule = std::move(*s);
    admit(std::move(e));  // duplicate digests (replayed seeds) are skipped
  }
  return true;
}

}  // namespace pfi::search
