// Minimal JSON value reader for the search engine's own artefacts.
//
// The corpus JSONL (--corpus-in) and the journal's cached records are both
// produced by campaign::json::Writer, so this reader only has to cover the
// grammar that writer emits: objects, arrays, strings with \"\\\n\r\t\uXXXX
// escapes, integers/fixed-point numbers, true/false/null, no comments. It is
// deliberately not a general-purpose parser — unknown input fails cleanly
// with nullopt, and object key order is preserved so round-trips stay
// byte-deterministic.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pfi::search::jsonv {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string text;
  std::vector<Value> items;                            // kArray
  std::vector<std::pair<std::string, Value>> fields;   // kObject, in order

  [[nodiscard]] const Value* find(std::string_view key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] std::string str_or(std::string_view key,
                                   const std::string& fallback) const {
    const Value* v = find(key);
    return v != nullptr && v->kind == Kind::kString ? v->text : fallback;
  }
  [[nodiscard]] std::int64_t int_or(std::string_view key,
                                    std::int64_t fallback) const {
    const Value* v = find(key);
    return v != nullptr && v->kind == Kind::kNumber
               ? static_cast<std::int64_t>(v->number)
               : fallback;
  }
};

namespace detail {

struct Reader {
  std::string_view s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r')) {
      ++i;
    }
  }
  bool lit(std::string_view t) {
    if (s.compare(i, t.size(), t) != 0) return false;
    i += t.size();
    return true;
  }

  bool string(std::string* out) {
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    while (i < s.size() && s[i] != '"') {
      char c = s[i];
      if (c == '\\') {
        if (++i >= s.size()) return false;
        switch (s[i]) {
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'u': {
            if (i + 4 >= s.size()) return false;
            const std::string hex(s.substr(i + 1, 4));
            c = static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
            i += 4;
            break;
          }
          default: return false;
        }
      }
      out->push_back(c);
      ++i;
    }
    if (i >= s.size()) return false;
    ++i;  // closing quote
    return true;
  }

  bool value(Value* out) {
    ws();
    if (i >= s.size()) return false;
    switch (s[i]) {
      case '{': {
        ++i;
        out->kind = Value::Kind::kObject;
        ws();
        if (i < s.size() && s[i] == '}') {
          ++i;
          return true;
        }
        for (;;) {
          ws();
          std::string key;
          if (!string(&key)) return false;
          ws();
          if (i >= s.size() || s[i] != ':') return false;
          ++i;
          Value v;
          if (!value(&v)) return false;
          out->fields.emplace_back(std::move(key), std::move(v));
          ws();
          if (i < s.size() && s[i] == ',') {
            ++i;
            continue;
          }
          break;
        }
        if (i >= s.size() || s[i] != '}') return false;
        ++i;
        return true;
      }
      case '[': {
        ++i;
        out->kind = Value::Kind::kArray;
        ws();
        if (i < s.size() && s[i] == ']') {
          ++i;
          return true;
        }
        for (;;) {
          Value v;
          if (!value(&v)) return false;
          out->items.push_back(std::move(v));
          ws();
          if (i < s.size() && s[i] == ',') {
            ++i;
            continue;
          }
          break;
        }
        if (i >= s.size() || s[i] != ']') return false;
        ++i;
        return true;
      }
      case '"':
        out->kind = Value::Kind::kString;
        return string(&out->text);
      case 't':
        out->kind = Value::Kind::kBool;
        out->boolean = true;
        return lit("true");
      case 'f':
        out->kind = Value::Kind::kBool;
        out->boolean = false;
        return lit("false");
      case 'n':
        out->kind = Value::Kind::kNull;
        return lit("null");
      default: {
        const std::size_t start = i;
        if (s[i] == '-') ++i;
        while (i < s.size() &&
               ((s[i] >= '0' && s[i] <= '9') || s[i] == '.' || s[i] == 'e' ||
                s[i] == 'E' || s[i] == '+' || s[i] == '-')) {
          ++i;
        }
        if (i == start) return false;
        out->kind = Value::Kind::kNumber;
        out->number =
            std::strtod(std::string(s.substr(start, i - start)).c_str(),
                        nullptr);
        return true;
      }
    }
  }
};

}  // namespace detail

/// Parse one JSON document; nullopt on any syntax error or trailing junk.
inline std::optional<Value> parse(std::string_view text) {
  detail::Reader r{text};
  Value v;
  if (!r.value(&v)) return std::nullopt;
  r.ws();
  if (r.i != text.size()) return std::nullopt;
  return v;
}

}  // namespace pfi::search::jsonv
