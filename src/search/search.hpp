// Coverage-guided fault-space exploration.
//
// The static planner spends its cell budget on a fixed cross product; the
// search engine spends the same budget chasing *behaviour*: it seeds a
// corpus from the planned schedules (plus the unfaulted baseline), then
// repeatedly (1) draws a generation of mutants from rarity-weighted corpus
// parents, (2) pre-screens them with lint::check_schedule so statically
// broken schedules never cost a simulation, (3) executes the survivors as a
// batch through campaign::run_cells — inheriting --jobs, --isolate, the
// watchdog and the retry policy — and (4) admits every mutant whose
// coverage digest (or state-transition set) is new. Oracle violations feed
// straight into the ddmin minimizer, probing through the journal cache.
//
// Determinism: all randomness flows from one SplitMix64 stream seeded from
// the spec seed, generations are built before any execution and processed
// in cell order after all of it, and nothing wall-clock ever reaches the
// corpus or the report. A whole search run — corpus evolution, mutation
// order, final report — is therefore byte-identical at any --jobs and
// in-process vs --isolate (test-asserted in tests/search_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "campaign/executor.hpp"
#include "campaign/minimize.hpp"
#include "campaign/spec.hpp"
#include "search/corpus.hpp"

namespace pfi::search {

struct SearchOptions {
  /// Fresh cell executions to spend (journal/duplicate hits are free).
  int budget = 256;
  /// Mutants drawn per generation. A search parameter, *not* tied to
  /// --jobs: the corpus must evolve identically whatever the parallelism.
  int batch = 16;
  /// Search PRNG seed; 0 = derive from the spec's first simulation seed.
  std::uint64_t seed = 0;
  /// Redraws per generation slot when lint rejects or duplicates collide.
  int mutation_tries = 8;
  /// Answer mutants whose lint::canonical_key matches an already-executed
  /// schedule from that representative's record instead of simulating them
  /// (they still occupy their generation slot and budget charge, so corpus
  /// evolution and the final violation set are byte-identical to a
  /// non-pruning run — it just spends fewer real simulations).
  bool prune_equivalent = true;
  int max_minimize = 8;  // violations minimised per run
  int minimize_max_runs = 256;

  // Executor knobs, passed straight through to campaign::run_cells.
  int jobs = 1;
  bool isolate = false;
  int retries = 0;

  /// Journal path ("" = no journal): records of executed mutants append
  /// here, and schedules whose key is already journaled are admitted from
  /// their cached record without costing budget.
  std::string journal_path;
  /// Corpus JSONL to preload (resume); "" = start from the planner seeds.
  std::string corpus_in;

  std::function<void(const std::string&)> on_progress;  // stderr lines
  std::function<bool()> should_stop;

  /// Batch-execution override. When set, each generation's surviving cells
  /// go through this instead of campaign::run_cells — the fabric daemon
  /// plugs distributed execution in here. Must keep the executor contract:
  /// results[i] corresponds to cells[i], index == -1 for unexecuted slots.
  /// Minimizer probes (single cells) stay in-process either way: they are
  /// sequential by nature and usually journal-cached.
  std::function<std::vector<campaign::RunResult>(
      const std::vector<campaign::RunCell>&,
      const campaign::ExecutorOptions&)>
      run_batch;
};

struct SearchViolation {
  std::string id;      // cell id of the discovering mutant
  std::string digest;  // its coverage digest
  std::string reason;  // oracle explanation
  campaign::FaultSchedule schedule;   // as discovered
  campaign::FaultSchedule minimized;  // after ddmin (== schedule if skipped)
  bool minimize_attempted = false;
  bool reproduced = false;
  int probe_runs = 0;
  int probe_cache_hits = 0;
};

struct CurvePoint {
  int executed = 0;  // budget spent so far (executions + equivalence skips)
  int digests = 0;   // unique coverage digests discovered by then
};

struct SearchResult {
  Corpus corpus;
  int seeded = 0;          // corpus entries taken from the planner seeds
  int executed = 0;        // fresh simulations run
  int equiv_skipped = 0;   // mutants answered from an equivalent's record
  int journal_hits = 0;    // mutants answered from the journal cache
  int duplicates = 0;      // mutants identical to an already-tried schedule
  int lint_skipped = 0;    // mutants rejected by the static pre-screen
  int errors = 0;          // executed cells that errored (no coverage)
  int minimize_runs = 0;   // ddmin probe executions (outside the budget)
  bool interrupted = false;
  std::set<std::string> transitions;  // global state-transition set
  std::vector<CurvePoint> curve;      // new-coverage curve
  std::vector<SearchViolation> violations;  // digest-unique, discovery order
  std::string error;  // non-empty = the search could not start
};

/// Run a coverage-guided exploration of `spec`'s fault space. The spec's
/// first seed/vendor fix the simulation template; only schedules mutate.
SearchResult explore(const campaign::CampaignSpec& spec,
                     const SearchOptions& opts);

/// The deterministic search report (one JSON document, no wall-clock).
std::string report_json(const campaign::CampaignSpec& spec,
                        const SearchOptions& opts, const SearchResult& res);

}  // namespace pfi::search
