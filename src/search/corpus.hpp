// The search corpus: (FaultSchedule, coverage digest) pairs plus provenance.
//
// A corpus entry is admitted when its run produced a coverage digest (or a
// protocol state transition) the search had not seen; afterwards it competes
// for mutation slots weighted by the *rarity* of its coverage features — an
// entry whose features appear in few other entries is picked more often, the
// usual greybox-fuzzing pressure toward the frontier of behaviour space.
//
// The whole corpus serialises to JSONL (one entry per line, schedules in the
// same JSON shape FaultSchedule::to_json emits), so --corpus-out / --corpus-in
// make search runs resumable and the digest set diffable in a golden test.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "campaign/schedule.hpp"
#include "search/prng.hpp"

namespace pfi::search {

struct CorpusEntry {
  campaign::FaultSchedule schedule;
  std::string digest;                 // coverage digest of its run
  std::vector<std::string> features;  // sorted coverage features (obs)
  int iteration = 0;                  // executed-cell count at admission
  int parent = -1;                    // corpus index mutated from (-1 = seed)
  std::string op = "seed";            // operator that produced it
};

class Corpus {
 public:
  /// Admit an entry; returns its index, or -1 when the digest is already
  /// present (the corpus is digest-unique).
  int admit(CorpusEntry entry);

  [[nodiscard]] const std::vector<CorpusEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] bool has_digest(const std::string& digest) const {
    return digests_.count(digest) != 0;
  }

  /// Rarity-weighted draw: an entry's weight is the sum over its features of
  /// 1/count(feature), in fixed point, so the draw is integer-deterministic.
  /// Returns the entry index; requires a non-empty corpus.
  [[nodiscard]] std::size_t pick_weighted(SplitMix64& rng) const;

  /// One JSONL line per entry, in admission order.
  [[nodiscard]] std::string to_jsonl() const;

  /// Parse JSONL (as produced by to_jsonl); malformed lines abort the load.
  /// Entries whose digest is already present are skipped (resume may replay
  /// a seed set). Returns false and sets *err on parse failure.
  bool load_jsonl(const std::string& text, std::string* err);

 private:
  std::vector<CorpusEntry> entries_;
  std::map<std::string, int> digests_;        // digest -> entry index
  std::map<std::string, std::uint32_t> feature_count_;
};

/// Parse the JSON array form FaultSchedule::to_json emits back into a
/// schedule. Fields irrelevant to an event's kind come back as defaults
/// (to_json omits them), which compiles to identical filter scripts.
std::optional<campaign::FaultSchedule> schedule_from_json(
    const std::string& array_json, std::string* err);

}  // namespace pfi::search
