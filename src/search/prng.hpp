// The search engine's single source of randomness.
//
// Everything the coverage-guided search decides — which corpus entry to
// mutate, which operator to apply, every operator parameter — is drawn from
// one SplitMix64 stream seeded from the spec seed. The simulation side has
// its own PRNG (sim::Rng, per cell); keeping the search stream separate and
// strictly sequential is what makes a whole exploration run byte-identical
// at any --jobs and in-process vs --isolate: parallelism only ever happens
// *between* draws (inside the executor batch), never during them.
#pragma once

#include <cstdint>

namespace pfi::search {

struct SplitMix64 {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;

  explicit SplitMix64(std::uint64_t seed) : state(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, n); returns 0 when n == 0. The modulo bias is
  /// irrelevant at fuzzing pool sizes and keeps the draw a single `next()`,
  /// which keeps replay simple.
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }

  /// Uniform int in [lo, hi] inclusive. Requires lo <= hi.
  int range(int lo, int hi) {
    return lo + static_cast<int>(below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// True once in `n` draws on average.
  bool one_in(std::uint64_t n) { return below(n) == 0; }
};

}  // namespace pfi::search
