#include "search/mutate.hpp"

#include <algorithm>

#include "lint/registry.hpp"

namespace pfi::search {

using campaign::FaultEvent;
using campaign::FaultSchedule;
using core::scriptgen::FaultKind;

namespace {

constexpr FaultKind kAllKinds[] = {
    FaultKind::kDrop, FaultKind::kDelay, FaultKind::kDuplicate,
    FaultKind::kCorrupt, FaultKind::kReorder,
};

/// Fixed palette of delays; a continuous draw would make every delay mutant
/// a unique digest for the wrong reason (the schedule, not the behaviour).
constexpr int kDelaysMs[] = {100, 500, 1500, 3000};

FaultKind pick_kind(const MutationPools& pools, SplitMix64& rng) {
  if (pools.kinds.empty()) {
    return kAllKinds[rng.below(std::size(kAllKinds))];
  }
  return pools.kinds[rng.below(pools.kinds.size())];
}

/// Re-draw the parameters that only matter for `e.kind`; keeps unrelated
/// fields at their defaults so equal-behaviour mutants hash equal.
void draw_kind_params(FaultEvent* e, SplitMix64& rng) {
  e->delay = sim::msec(kDelaysMs[rng.below(std::size(kDelaysMs))]);
  e->copies = rng.range(1, 3);
  e->corrupt_offset = static_cast<std::size_t>(rng.below(9));
  e->batch = rng.range(2, 5);
}

std::size_t pick_index(const FaultSchedule& s, SplitMix64& rng) {
  return static_cast<std::size_t>(rng.below(s.events.size()));
}

void op_add(FaultSchedule* s, const MutationPools& pools, SplitMix64& rng) {
  if (static_cast<int>(s->events.size()) >= pools.max_events) return;
  const FaultEvent e = random_event(pools, rng);
  const std::size_t at = static_cast<std::size_t>(rng.below(s->events.size() + 1));
  s->events.insert(s->events.begin() + static_cast<std::ptrdiff_t>(at), e);
}

void op_remove(FaultSchedule* s, SplitMix64& rng) {
  if (s->events.size() < 2) return;  // never mutate down to a bare baseline
  const std::size_t at = pick_index(*s, rng);
  s->events.erase(s->events.begin() + static_cast<std::ptrdiff_t>(at));
}

void op_retarget(FaultSchedule* s, const MutationPools& pools,
                 SplitMix64& rng) {
  if (s->events.empty() || pools.types.empty()) return;
  FaultEvent& e = s->events[pick_index(*s, rng)];
  e.type = pools.types[rng.below(pools.types.size())];
  if (rng.one_in(3)) e.on_send = !e.on_send;
}

void op_shift(FaultSchedule* s, const MutationPools& pools, SplitMix64& rng) {
  if (s->events.empty()) return;
  FaultEvent& e = s->events[pick_index(*s, rng)];
  int delta = rng.range(-2, 3);
  if (delta == 0) delta = 1;
  e.occurrence = std::clamp(e.occurrence + delta, 1, pools.max_occurrence);
  if (e.kind == FaultKind::kReorder) {
    e.batch = std::clamp(e.batch + rng.range(-1, 1), 2, 6);
  }
}

void op_flip_kind(FaultSchedule* s, const MutationPools& pools,
                  SplitMix64& rng) {
  if (s->events.empty()) return;
  FaultEvent& e = s->events[pick_index(*s, rng)];
  const FaultKind before = e.kind;
  for (int tries = 0; tries < 4 && e.kind == before; ++tries) {
    e.kind = pick_kind(pools, rng);
  }
  draw_kind_params(&e, rng);
}

void op_splice(FaultSchedule* s, const FaultSchedule* partner,
               const MutationPools& pools, SplitMix64& rng) {
  if (partner == nullptr || partner->events.empty()) {
    op_add(s, pools, rng);  // nothing to cross with; still make progress
    return;
  }
  // Keep events [0, cut) of the parent, append events [cut2, end) of the
  // partner; both cuts random, result clamped to the pool's size cap.
  const std::size_t cut = rng.below(s->events.size() + 1);
  const std::size_t cut2 = rng.below(partner->events.size());
  s->events.resize(cut);
  for (std::size_t i = cut2; i < partner->events.size(); ++i) {
    if (static_cast<int>(s->events.size()) >= pools.max_events) break;
    s->events.push_back(partner->events[i]);
  }
  if (s->events.empty()) op_add(s, pools, rng);
}

}  // namespace

const char* to_string(MutOp op) {
  switch (op) {
    case MutOp::kAdd: return "add";
    case MutOp::kRemove: return "remove";
    case MutOp::kRetarget: return "retarget";
    case MutOp::kShift: return "shift";
    case MutOp::kFlipKind: return "flip-kind";
    case MutOp::kSplice: return "splice";
    case MutOp::kHavoc: return "havoc";
  }
  return "?";
}

MutationPools pools_for(const std::vector<std::string>& spec_types,
                        const std::string& protocol) {
  MutationPools pools;
  auto push_unique = [&](const std::string& t) {
    if (t == "*" || t == "unknown") return;
    if (std::find(pools.types.begin(), pools.types.end(), t) ==
        pools.types.end()) {
      pools.types.push_back(t);
    }
  };
  for (const std::string& t : spec_types) push_unique(t);
  for (const std::string& t : lint::protocol_message_types(protocol)) {
    push_unique(t);
  }
  return pools;
}

FaultEvent random_event(const MutationPools& pools, SplitMix64& rng) {
  FaultEvent e;
  e.type = pools.types.empty() ? "*" : pools.types[rng.below(pools.types.size())];
  e.kind = pick_kind(pools, rng);
  e.occurrence = rng.range(1, pools.max_occurrence);
  e.on_send = rng.below(2) == 0;
  draw_kind_params(&e, rng);
  return e;
}

MutOp pick_op(SplitMix64& rng, std::size_t parent_events, bool can_splice) {
  if (parent_events == 0) return MutOp::kAdd;  // baseline: only growth works
  std::vector<MutOp> ops = {MutOp::kAdd, MutOp::kRetarget, MutOp::kShift,
                            MutOp::kFlipKind, MutOp::kHavoc};
  if (parent_events >= 2) ops.push_back(MutOp::kRemove);
  if (can_splice) ops.push_back(MutOp::kSplice);
  return ops[rng.below(ops.size())];
}

FaultSchedule mutate(const FaultSchedule& parent, const FaultSchedule* partner,
                     const MutationPools& pools, SplitMix64& rng, MutOp op) {
  FaultSchedule s = parent;
  switch (op) {
    case MutOp::kAdd: op_add(&s, pools, rng); break;
    case MutOp::kRemove: op_remove(&s, rng); break;
    case MutOp::kRetarget: op_retarget(&s, pools, rng); break;
    case MutOp::kShift: op_shift(&s, pools, rng); break;
    case MutOp::kFlipKind: op_flip_kind(&s, pools, rng); break;
    case MutOp::kSplice: op_splice(&s, partner, pools, rng); break;
    case MutOp::kHavoc: {
      const int stack = rng.range(2, 5);
      for (int k = 0; k < stack; ++k) {
        const MutOp sub = pick_op(rng, s.events.size(), /*can_splice=*/false);
        s = mutate(s, nullptr, pools, rng, sub);
      }
      break;
    }
  }
  return s;
}

}  // namespace pfi::search
